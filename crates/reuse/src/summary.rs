//! Human-readable reporting of engine metrics.

use crate::{EngineMetrics, ReuseEngine};

/// A formatted snapshot of a [`ReuseEngine`]'s accumulated metrics,
/// suitable for logs and examples.
///
/// # Example
///
/// ```
/// use reuse_core::{ReuseConfig, ReuseEngine};
/// use reuse_nn::{Activation, NetworkBuilder};
///
/// let net = NetworkBuilder::new("demo", 4)
///     .fully_connected(8, Activation::Relu)
///     .fully_connected(2, Activation::Identity)
///     .build()
///     .unwrap();
/// let mut engine = ReuseEngine::from_network(&net, &ReuseConfig::uniform(16));
/// for _ in 0..4 {
///     engine.execute(&[0.1, 0.2, 0.3, 0.4])?;
/// }
/// let report = reuse_core::summary::render(&engine);
/// assert!(report.contains("fc1"));
/// # Ok::<(), reuse_core::ReuseError>(())
/// ```
pub fn render(engine: &ReuseEngine) -> String {
    render_metrics(engine.network().name(), engine.metrics())
}

/// Formats engine metrics for a named network.
pub fn render_metrics(name: &str, metrics: &EngineMetrics) -> String {
    let mut s = format!(
        "reuse summary for {name} ({} executions)\n{:<12} {:>12} {:>14} {:>12}\n",
        metrics.executions, "layer", "similarity", "comp. reuse", "reuse execs"
    );
    for layer in &metrics.layers {
        if layer.reuse_executions == 0 {
            s.push_str(&format!(
                "{:<12} {:>12} {:>14} {:>12}\n",
                layer.name, "-", "-", 0
            ));
        } else {
            s.push_str(&format!(
                "{:<12} {:>11.1}% {:>13.1}% {:>12}\n",
                layer.name,
                layer.input_similarity() * 100.0,
                layer.computation_reuse() * 100.0,
                layer.reuse_executions
            ));
        }
    }
    s.push_str(&format!(
        "{:<12} {:>11.1}% {:>13.1}%\n",
        "OVERALL",
        metrics.overall_input_similarity() * 100.0,
        metrics.overall_computation_reuse() * 100.0
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::LayerMetrics;

    #[test]
    fn render_metrics_lists_layers_and_overall() {
        let mut fc1 = LayerMetrics::new("fc1");
        fc1.record(100, 80, 1000, 200);
        let silent = LayerMetrics::new("fc2");
        let metrics = EngineMetrics {
            layers: vec![fc1, silent],
            executions: 5,
        };
        let s = render_metrics("demo", &metrics);
        assert!(s.contains("demo"));
        assert!(s.contains("fc1"));
        assert!(s.contains("80.0%"));
        assert!(s.contains("OVERALL"));
        // Unmetered layers render placeholders rather than zeros.
        let fc2_line = s.lines().find(|l| l.starts_with("fc2")).unwrap();
        assert!(fc2_line.contains('-'));
    }
}

//! Offline similarity replay (the paper's Section III methodology).
//!
//! The paper analyzes input similarity across "multiple configurations:
//! number of clusters, range of the inputs and layers where the
//! quantization is applied". Re-running the DNN for every configuration is
//! wasteful: the *raw* layer inputs do not depend on the quantizer under
//! analysis (inputs are produced by the fp32 network during profiling).
//! [`InputRecorder`] captures each layer's raw input stream once;
//! [`replay_similarity`] then evaluates any cluster count against the
//! recording in one cheap pass.
//!
//! The replay is *exact* for the first quantized layer of a configuration
//! and a close approximation for deeper layers (whose real inputs would be
//! perturbed by upstream quantization — a second-order effect the paper's
//! per-layer table ignores too).

use reuse_nn::Network;
use reuse_quant::{InputRange, LinearQuantizer, RangeProfiler};

use crate::ReuseError;

/// Recorded raw input streams for every weighted layer of a network.
#[derive(Debug, Clone)]
pub struct InputRecorder {
    /// Layer names, in network order.
    names: Vec<String>,
    /// Per layer: one raw input vector per execution.
    streams: Vec<Vec<Vec<f32>>>,
}

impl InputRecorder {
    /// Runs the fp32 network over `frames`, recording every weighted
    /// layer's input stream.
    ///
    /// # Errors
    ///
    /// Propagates network execution errors.
    pub fn record(network: &Network, frames: &[Vec<f32>]) -> Result<Self, ReuseError> {
        let weighted: Vec<usize> = network
            .layers()
            .iter()
            .enumerate()
            .filter(|(_, (_, l))| l.has_weights())
            .map(|(i, _)| i)
            .collect();
        let names = weighted
            .iter()
            .map(|&i| network.layers()[i].0.clone())
            .collect();
        let mut streams: Vec<Vec<Vec<f32>>> = vec![Vec::new(); weighted.len()];
        for frame in frames {
            let mut cur =
                reuse_tensor::Tensor::from_vec(network.input_shape().clone(), frame.clone())?;
            for (slot, &layer_index) in weighted.iter().enumerate() {
                // Apply any passive layers between the previous weighted
                // layer and this one.
                let start = if slot == 0 { 0 } else { weighted[slot - 1] + 1 };
                for i in start..layer_index {
                    cur = network.apply_layer(i, cur)?;
                }
                streams[slot].push(cur.as_slice().to_vec());
                cur = network.apply_layer(layer_index, cur)?;
            }
        }
        Ok(InputRecorder { names, streams })
    }

    /// Recorded layer names.
    pub fn layer_names(&self) -> &[String] {
        &self.names
    }

    /// The raw input stream of one layer.
    pub fn stream(&self, name: &str) -> Option<&[Vec<f32>]> {
        let idx = self.names.iter().position(|n| n == name)?;
        Some(&self.streams[idx])
    }

    /// Executions recorded.
    pub fn executions(&self) -> usize {
        self.streams.first().map_or(0, Vec::len)
    }
}

/// Similarity of one recorded stream under a hypothetical quantizer
/// configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplaySimilarity {
    /// Layer name.
    pub name: String,
    /// Fraction of inputs whose quantized index matches the previous
    /// execution's, over all non-first executions.
    pub input_similarity: f64,
    /// The quantizer's step under the profiled range.
    pub step: f32,
}

/// Replays one layer's recorded stream under `clusters`-way linear
/// quantization with a range profiled from the stream itself (margin 0).
///
/// Returns `None` for unknown layers or degenerate streams (fewer than two
/// executions, zero-width frames, or a zero-width profiled range) — a
/// similarity over zero comparisons is meaningless, not `0.0`.
pub fn replay_similarity(
    recorder: &InputRecorder,
    layer: &str,
    clusters: usize,
) -> Option<ReplaySimilarity> {
    let stream = recorder.stream(layer)?;
    let mut prev = Vec::new();
    let mut cur = Vec::new();
    replay_similarity_on(layer, stream, clusters, &mut prev, &mut cur)
}

/// The replay core: evaluates one already-resolved stream, reusing the
/// caller's two code scratch buffers (previous / current frame) so a sweep
/// over many cluster counts quantizes thousands of frames without
/// allocating per frame.
fn replay_similarity_on(
    layer: &str,
    stream: &[Vec<f32>],
    clusters: usize,
    prev: &mut Vec<reuse_quant::QuantCode>,
    cur: &mut Vec<reuse_quant::QuantCode>,
) -> Option<ReplaySimilarity> {
    if stream.len() < 2 || stream[0].is_empty() {
        return None;
    }
    let mut profiler = RangeProfiler::new();
    for input in stream {
        profiler.observe_slice(input);
    }
    let range: InputRange = profiler.range(0.0).ok()?;
    let quantizer = LinearQuantizer::new(range, clusters).ok()?;
    quantizer.quantize_slice_into(&stream[0], prev);
    let mut same = 0u64;
    let mut total = 0u64;
    for input in &stream[1..] {
        quantizer.quantize_slice_into(input, cur);
        same += cur.iter().zip(prev.iter()).filter(|(a, b)| a == b).count() as u64;
        total += cur.len() as u64;
        std::mem::swap(prev, cur);
    }
    if total == 0 {
        return None;
    }
    Some(ReplaySimilarity {
        name: layer.to_string(),
        input_similarity: same as f64 / total as f64,
        step: quantizer.step(),
    })
}

/// Replays every recorded layer under a set of cluster counts:
/// `result[layer][cluster_config]`. Each layer's stream is resolved once
/// and its code buffers are shared across the whole sweep.
pub fn replay_sweep(
    recorder: &InputRecorder,
    cluster_counts: &[usize],
) -> Vec<Vec<Option<ReplaySimilarity>>> {
    let mut prev = Vec::new();
    let mut cur = Vec::new();
    recorder
        .layer_names()
        .iter()
        .map(|name| {
            let stream = recorder.stream(name);
            cluster_counts
                .iter()
                .map(|&c| {
                    stream.and_then(|s| replay_similarity_on(name, s, c, &mut prev, &mut cur))
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use reuse_nn::{init::Rng64, Activation, NetworkBuilder};

    fn walk(len: usize, dim: usize, step: f32, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = Rng64::new(seed);
        let mut frame: Vec<f32> = (0..dim).map(|_| rng.uniform(0.5)).collect();
        (0..len)
            .map(|_| {
                for v in &mut frame {
                    *v = (*v + rng.uniform(step)).clamp(-1.0, 1.0);
                }
                frame.clone()
            })
            .collect()
    }

    fn mlp() -> Network {
        NetworkBuilder::new("replay-mlp", 8)
            .seed(3)
            .fully_connected(12, Activation::Relu)
            .fully_connected(4, Activation::Identity)
            .build()
            .unwrap()
    }

    #[test]
    fn recorder_captures_all_weighted_layers() {
        let net = mlp();
        let rec = InputRecorder::record(&net, &walk(10, 8, 0.1, 1)).unwrap();
        assert_eq!(rec.layer_names(), &["fc1".to_string(), "fc2".to_string()]);
        assert_eq!(rec.executions(), 10);
        assert_eq!(rec.stream("fc1").unwrap()[0].len(), 8);
        assert_eq!(rec.stream("fc2").unwrap()[0].len(), 12);
        assert!(rec.stream("nope").is_none());
    }

    #[test]
    fn recorded_fc2_inputs_equal_fc1_outputs() {
        let net = mlp();
        let frames = walk(5, 8, 0.1, 2);
        let rec = InputRecorder::record(&net, &frames).unwrap();
        // fc2's recorded input at execution t is the fp32 fc1 activation.
        let reuse_nn::Layer::FullyConnected(fc1) = &net.layers()[0].1 else {
            panic!()
        };
        let t_in = reuse_tensor::Tensor::from_slice_1d(&frames[3]).unwrap();
        let expect = fc1.forward(&t_in).unwrap();
        assert_eq!(rec.stream("fc2").unwrap()[3], expect.as_slice());
    }

    #[test]
    fn replay_matches_engine_for_first_quantized_layer() {
        // The engine's fc1 similarity (reuse enabled everywhere, margin 0,
        // calibrated on the same frames) must match the replay exactly:
        // fc1's real inputs are raw frames in both paths.
        let net = mlp();
        let frames = walk(30, 8, 0.1, 3);
        let rec = InputRecorder::record(&net, &frames).unwrap();
        let replay = replay_similarity(&rec, "fc1", 16).unwrap();

        let config = crate::ReuseConfig::uniform(16).range_margin(0.0);
        let mut engine = crate::ReuseEngine::from_network(&net, &config);
        for f in &frames {
            engine.execute(f).unwrap();
        }
        let engine_sim = engine.metrics().layer("fc1").unwrap().input_similarity();
        // The engine's first reuse execution compares against the quantized
        // scratch execution (frame 1), while the replay starts at frame 0 —
        // one frame of offset tolerance.
        assert!(
            (replay.input_similarity - engine_sim).abs() < 0.06,
            "replay {} vs engine {engine_sim}",
            replay.input_similarity
        );
    }

    #[test]
    fn fewer_clusters_more_similarity() {
        let net = mlp();
        let rec = InputRecorder::record(&net, &walk(40, 8, 0.1, 4)).unwrap();
        let sweep = replay_sweep(&rec, &[8, 16, 32, 64]);
        for layer_row in &sweep {
            let sims: Vec<f64> = layer_row
                .iter()
                .map(|r| r.as_ref().unwrap().input_similarity)
                .collect();
            for pair in sims.windows(2) {
                assert!(
                    pair[0] >= pair[1] - 1e-9,
                    "similarity must not rise with clusters: {sims:?}"
                );
            }
        }
    }

    #[test]
    fn degenerate_streams_return_none() {
        let net = mlp();
        // No frames at all: nothing was recorded.
        let rec = InputRecorder::record(&net, &[]).unwrap();
        assert_eq!(rec.executions(), 0);
        assert!(replay_similarity(&rec, "fc1", 16).is_none());
        // A single execution has no previous frame to compare against.
        let rec = InputRecorder::record(&net, &walk(1, 8, 0.1, 5)).unwrap();
        assert!(replay_similarity(&rec, "fc1", 16).is_none());
        // Constant stream: zero-width range.
        let rec2 = InputRecorder::record(&net, &vec![vec![0.5; 8]; 4]).unwrap();
        assert!(replay_similarity(&rec2, "fc1", 16).is_none());
        // The sweep mirrors the per-layer result instead of fabricating
        // zeros (fc1's raw stream is zero-width; fc2's activations still
        // span a range and replay as fully similar).
        let sweep = replay_sweep(&rec2, &[8, 16]);
        assert!(sweep[0].iter().all(Option::is_none));
        assert!(sweep[1]
            .iter()
            .all(|r| r.as_ref().is_some_and(|s| s.input_similarity == 1.0)));
    }

    #[test]
    fn sweep_matches_individual_replays() {
        // The sweep's hoisted stream lookup and shared scratch buffers must
        // not change any result relative to independent replay calls.
        let net = mlp();
        let rec = InputRecorder::record(&net, &walk(20, 8, 0.12, 9)).unwrap();
        let sweep = replay_sweep(&rec, &[4, 16, 64]);
        assert_eq!(sweep.len(), rec.layer_names().len());
        for (name, row) in rec.layer_names().iter().zip(sweep.iter()) {
            for (&clusters, got) in [4usize, 16, 64].iter().zip(row.iter()) {
                let alone = replay_similarity(&rec, name, clusters);
                assert_eq!(got, &alone, "{name} @ {clusters}");
            }
        }
    }
}

//! Reuse metrics: input similarity, computation reuse and the relative
//! difference of consecutive input vectors (paper Section III and Fig. 4).

/// The Fig. 4 metric: Euclidean distance between the current and previous
/// input vectors, divided by the magnitude of the previous input vector.
///
/// Returns `0.0` for two empty slices and `f32::INFINITY` when the previous
/// vector has zero magnitude but the vectors differ.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn relative_difference(prev: &[f32], cur: &[f32]) -> f32 {
    assert_eq!(prev.len(), cur.len(), "vectors must have equal length");
    let mut dist2 = 0.0f64;
    let mut mag2 = 0.0f64;
    for (&p, &c) in prev.iter().zip(cur.iter()) {
        let d = (c - p) as f64;
        dist2 += d * d;
        mag2 += (p as f64) * (p as f64);
    }
    if mag2 == 0.0 {
        return if dist2 == 0.0 { 0.0 } else { f32::INFINITY };
    }
    (dist2.sqrt() / mag2.sqrt()) as f32
}

/// Accumulated reuse statistics of one layer across executions.
///
/// *Input similarity* is the fraction of inputs whose quantized index was
/// unchanged with respect to the previous execution; *computation reuse* is
/// the fraction of multiply-accumulates avoided (paper Section III
/// definitions). Only incremental (non-first) executions contribute.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LayerMetrics {
    /// Layer name within the network.
    pub name: String,
    /// Incremental executions observed (from-scratch ones excluded).
    pub reuse_executions: u64,
    /// Inputs seen across incremental executions.
    pub inputs_total: u64,
    /// Inputs whose quantized index was unchanged.
    pub inputs_unchanged: u64,
    /// Multiply-accumulates a from-scratch execution would perform.
    pub macs_total: u64,
    /// Multiply-accumulates actually performed by the incremental path.
    pub macs_performed: u64,
    /// Relative-difference series (one point per execution after the first),
    /// recorded only when enabled in the config.
    pub relative_differences: Vec<f32>,
}

impl LayerMetrics {
    /// Creates empty metrics for a named layer.
    pub fn new(name: &str) -> Self {
        LayerMetrics {
            name: name.to_string(),
            ..Default::default()
        }
    }

    /// Fraction of inputs with unchanged quantized value, in `[0, 1]`.
    pub fn input_similarity(&self) -> f64 {
        if self.inputs_total == 0 {
            return 0.0;
        }
        self.inputs_unchanged as f64 / self.inputs_total as f64
    }

    /// Fraction of computations avoided, in `[0, 1]`.
    pub fn computation_reuse(&self) -> f64 {
        if self.macs_total == 0 {
            return 0.0;
        }
        1.0 - self.macs_performed as f64 / self.macs_total as f64
    }

    /// Records one incremental execution.
    pub fn record(&mut self, inputs: u64, unchanged: u64, macs_total: u64, macs_performed: u64) {
        self.reuse_executions += 1;
        self.inputs_total += inputs;
        self.inputs_unchanged += unchanged;
        self.macs_total += macs_total;
        self.macs_performed += macs_performed;
    }

    /// Clears every accumulated counter and the relative-difference series,
    /// keeping only the layer name.
    pub fn reset(&mut self) {
        let name = std::mem::take(&mut self.name);
        *self = LayerMetrics {
            name,
            ..Default::default()
        };
    }
}

/// Aggregated metrics for a whole engine.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineMetrics {
    /// Per-layer metrics, in network layer order (weighted layers only).
    pub layers: Vec<LayerMetrics>,
    /// Total executions (including calibration and from-scratch ones).
    pub executions: u64,
}

impl EngineMetrics {
    /// Finds a layer's metrics by name.
    pub fn layer(&self, name: &str) -> Option<&LayerMetrics> {
        self.layers.iter().find(|l| l.name == name)
    }

    /// Input similarity across all reuse-enabled layers, weighted by input
    /// counts (the per-DNN bars of paper Fig. 5).
    pub fn overall_input_similarity(&self) -> f64 {
        let total: u64 = self.layers.iter().map(|l| l.inputs_total).sum();
        if total == 0 {
            return 0.0;
        }
        let unchanged: u64 = self.layers.iter().map(|l| l.inputs_unchanged).sum();
        unchanged as f64 / total as f64
    }

    /// Clears all accumulated statistics, keeping the layer roster.
    pub fn reset(&mut self) {
        for layer in &mut self.layers {
            layer.reset();
        }
        self.executions = 0;
    }

    /// Computation reuse across all reuse-enabled layers, weighted by MAC
    /// counts (the per-DNN bars of paper Fig. 5).
    pub fn overall_computation_reuse(&self) -> f64 {
        let total: u64 = self.layers.iter().map(|l| l.macs_total).sum();
        if total == 0 {
            return 0.0;
        }
        let performed: u64 = self.layers.iter().map(|l| l.macs_performed).sum();
        1.0 - performed as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_difference_basic() {
        assert_eq!(relative_difference(&[3.0, 4.0], &[3.0, 4.0]), 0.0);
        // prev magnitude 5, distance 5 -> 1.0
        let rd = relative_difference(&[3.0, 4.0], &[0.0, 0.0]);
        assert!((rd - 1.0).abs() < 1e-6);
    }

    #[test]
    fn relative_difference_zero_prev() {
        assert_eq!(relative_difference(&[0.0], &[0.0]), 0.0);
        assert_eq!(relative_difference(&[0.0], &[1.0]), f32::INFINITY);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn relative_difference_length_mismatch_panics() {
        relative_difference(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn similarity_and_reuse_ratios() {
        let mut m = LayerMetrics::new("fc1");
        m.record(100, 75, 1000, 250);
        assert!((m.input_similarity() - 0.75).abs() < 1e-12);
        assert!((m.computation_reuse() - 0.75).abs() < 1e-12);
        m.record(100, 25, 1000, 750);
        assert!((m.input_similarity() - 0.5).abs() < 1e-12);
        assert!((m.computation_reuse() - 0.5).abs() < 1e-12);
        assert_eq!(m.reuse_executions, 2);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = LayerMetrics::new("x");
        assert_eq!(m.input_similarity(), 0.0);
        assert_eq!(m.computation_reuse(), 0.0);
    }

    #[test]
    fn reset_clears_counters_but_keeps_names() {
        let mut m = LayerMetrics::new("fc1");
        m.record(10, 5, 100, 50);
        m.relative_differences.push(0.25);
        m.reset();
        assert_eq!(m.name, "fc1");
        assert_eq!(m.reuse_executions, 0);
        assert_eq!(m.inputs_total, 0);
        assert!(m.relative_differences.is_empty());
        let mut e = EngineMetrics {
            layers: vec![LayerMetrics::new("a"), LayerMetrics::new("b")],
            executions: 7,
        };
        e.layers[0].record(4, 2, 8, 4);
        e.reset();
        assert_eq!(e.executions, 0);
        assert_eq!(e.layers[0].inputs_total, 0);
        assert_eq!(e.layers[1].name, "b");
    }

    #[test]
    fn overall_weights_by_counts() {
        let mut big = LayerMetrics::new("big");
        big.record(900, 900, 9000, 0); // fully similar
        let mut small = LayerMetrics::new("small");
        small.record(100, 0, 1000, 1000); // fully dissimilar
        let e = EngineMetrics {
            layers: vec![big, small],
            executions: 2,
        };
        assert!((e.overall_input_similarity() - 0.9).abs() < 1e-12);
        assert!((e.overall_computation_reuse() - 0.9).abs() < 1e-12);
        assert!(e.layer("big").is_some());
        assert!(e.layer("nope").is_none());
    }
}

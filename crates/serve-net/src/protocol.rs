//! Wire protocol: length-prefixed binary frames, little-endian.
//!
//! # Connection preamble
//!
//! On connect the client sends 8 bytes — magic `b"RSNV"` then `u32`
//! protocol version — and the server answers with 16 bytes: the same
//! magic and version, then the model's input length and output length as
//! `u32` float counts (so clients can size buffers without a side
//! channel). A bad magic or version closes the connection.
//!
//! # Request (client → server)
//!
//! | field        | type  | notes                                       |
//! |--------------|-------|---------------------------------------------|
//! | `len`        | `u32` | bytes after this field: `17 + 4·input_len`  |
//! | `stream_id`  | `u64` | routing key (shard + session)               |
//! | `seq`        | `u32` | client-chosen, echoed in the response       |
//! | `flags`      | `u8`  | bit 0 high priority, bit 1 deadline present |
//! | `deadline_us`| `u32` | slack from server receipt, µs (0 if unset)  |
//! | payload      | `f32`×input_len | the input frame                   |
//!
//! # Response (server → client)
//!
//! | field       | type  | notes                                      |
//! |-------------|-------|--------------------------------------------|
//! | `len`       | `u32` | bytes after this field                     |
//! | `stream_id` | `u64` | echo                                       |
//! | `seq`       | `u32` | echo                                       |
//! | `status`    | `u8`  | see [`Status`]                             |
//! | payload     | `f32`×output_len | present only when status is `Ok` |
//!
//! Within one stream, `Ok` responses arrive in submission order (the
//! reuse chain is sequential); reject responses (`QueueFull`, `Shed`,
//! `DeadlineShed`) are sent immediately at ingress, and `Expired` /
//! `Failed` when the drop is discovered, so they can interleave with
//! earlier accepted frames' completions.

/// Connection magic (`b"RSNV"`).
pub const MAGIC: [u8; 4] = *b"RSNV";

/// Protocol version.
pub const VERSION: u32 = 1;

/// Request flag bit: serve this frame on the high-priority ingress lane.
pub const FLAG_HIGH_PRIORITY: u8 = 1 << 0;

/// Request flag bit: `deadline_us` carries a completion deadline.
pub const FLAG_DEADLINE: u8 = 1 << 1;

/// Fixed request-body bytes before the f32 payload
/// (`stream_id + seq + flags + deadline_us`).
pub const REQUEST_HEADER: usize = 8 + 4 + 1 + 4;

/// Fixed response-body bytes before the optional f32 payload
/// (`stream_id + seq + status`).
pub const RESPONSE_HEADER: usize = 8 + 4 + 1;

/// Hard cap on one message's length prefix — rejects garbage/hostile
/// prefixes before any allocation (16 MiB is ~4M floats, far above any
/// model input in the tree).
pub const MAX_MESSAGE: u32 = 16 << 20;

/// Outcome of one submitted frame, as carried in the response `status`
/// byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// The frame completed; the response carries the output payload.
    Ok = 0,
    /// Rejected at ingress: the stream's bounded queue was full.
    QueueFull = 1,
    /// Rejected at ingress: the stream is degraded and past its shed
    /// watermark.
    Shed = 2,
    /// Rejected at ingress: projected to miss its deadline.
    DeadlineShed = 3,
    /// Accepted but dropped before execution: its deadline passed while
    /// queued.
    Expired = 4,
    /// The frame will never complete: its stream failed (sticky execution
    /// error), was evicted, or is owned by another connection.
    Failed = 5,
}

impl Status {
    /// Parses a status byte.
    pub fn from_u8(v: u8) -> Option<Status> {
        Some(match v {
            0 => Status::Ok,
            1 => Status::QueueFull,
            2 => Status::Shed,
            3 => Status::DeadlineShed,
            4 => Status::Expired,
            5 => Status::Failed,
            _ => return None,
        })
    }
}

/// One parsed request body.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Routing key: shard and session identity.
    pub stream_id: u64,
    /// Client-chosen sequence number, echoed in the response.
    pub seq: u32,
    /// Flag bits ([`FLAG_HIGH_PRIORITY`], [`FLAG_DEADLINE`]).
    pub flags: u8,
    /// Deadline slack from server receipt in microseconds (meaningful only
    /// with [`FLAG_DEADLINE`]).
    pub deadline_us: u32,
    /// The input frame.
    pub payload: Vec<f32>,
}

/// Appends the client preamble (magic + version) to `buf`.
pub fn encode_client_preamble(buf: &mut Vec<u8>) {
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
}

/// Appends the server preamble (magic + version + model input/output
/// lengths in floats) to `buf`.
pub fn encode_server_preamble(buf: &mut Vec<u8>, input_len: u32, output_len: u32) {
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&input_len.to_le_bytes());
    buf.extend_from_slice(&output_len.to_le_bytes());
}

/// Appends one length-prefixed request message to `buf`.
pub fn encode_request(
    buf: &mut Vec<u8>,
    stream_id: u64,
    seq: u32,
    flags: u8,
    deadline_us: u32,
    payload: &[f32],
) {
    let len = (REQUEST_HEADER + 4 * payload.len()) as u32;
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(&stream_id.to_le_bytes());
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.push(flags);
    buf.extend_from_slice(&deadline_us.to_le_bytes());
    for v in payload {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Appends one length-prefixed response message to `buf`. `payload` must
/// be empty unless `status` is [`Status::Ok`].
pub fn encode_response(
    buf: &mut Vec<u8>,
    stream_id: u64,
    seq: u32,
    status: Status,
    payload: &[f32],
) {
    debug_assert!(status == Status::Ok || payload.is_empty());
    let len = (RESPONSE_HEADER + 4 * payload.len()) as u32;
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(&stream_id.to_le_bytes());
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.push(status as u8);
    for v in payload {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// A length prefix above [`MAX_MESSAGE`]: a protocol violation — the only
/// sane response is closing the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OversizedFrame;

/// Reads the `u32` length prefix at the start of `buf`, if complete.
/// Returns [`OversizedFrame`] on a prefix above [`MAX_MESSAGE`].
pub fn peek_len(buf: &[u8]) -> Result<Option<u32>, OversizedFrame> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    if len > MAX_MESSAGE {
        return Err(OversizedFrame);
    }
    Ok(Some(len))
}

/// Little-endian `u64` at `buf[at..at + 8]`.
pub fn read_u64(buf: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[at..at + 8]);
    u64::from_le_bytes(b)
}

/// Little-endian `u32` at `buf[at..at + 4]`.
pub fn read_u32(buf: &[u8], at: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&buf[at..at + 4]);
    u32::from_le_bytes(b)
}

/// Decodes one request body (the bytes after the length prefix). Returns
/// `None` when the body is malformed (short header, payload not a whole
/// number of floats).
pub fn decode_request(body: &[u8]) -> Option<Request> {
    if body.len() < REQUEST_HEADER || !(body.len() - REQUEST_HEADER).is_multiple_of(4) {
        return None;
    }
    let stream_id = read_u64(body, 0);
    let seq = read_u32(body, 8);
    let flags = body[12];
    let deadline_us = read_u32(body, 13);
    let payload = decode_f32s(&body[REQUEST_HEADER..]);
    Some(Request {
        stream_id,
        seq,
        flags,
        deadline_us,
        payload,
    })
}

/// Decodes a little-endian f32 payload. `bytes.len()` must be a multiple
/// of 4 (callers validate).
pub fn decode_f32s(bytes: &[u8]) -> Vec<f32> {
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip_is_exact() {
        let payload = [1.0f32, -2.5, f32::MIN_POSITIVE, 0.0];
        let mut buf = Vec::new();
        encode_request(
            &mut buf,
            42,
            7,
            FLAG_HIGH_PRIORITY | FLAG_DEADLINE,
            1500,
            &payload,
        );
        let len = peek_len(&buf).unwrap().unwrap() as usize;
        assert_eq!(4 + len, buf.len());
        let req = decode_request(&buf[4..4 + len]).unwrap();
        assert_eq!(req.stream_id, 42);
        assert_eq!(req.seq, 7);
        assert_eq!(req.flags, FLAG_HIGH_PRIORITY | FLAG_DEADLINE);
        assert_eq!(req.deadline_us, 1500);
        assert_eq!(req.payload, payload);
    }

    #[test]
    fn response_status_bytes_roundtrip() {
        for status in [
            Status::Ok,
            Status::QueueFull,
            Status::Shed,
            Status::DeadlineShed,
            Status::Expired,
            Status::Failed,
        ] {
            assert_eq!(Status::from_u8(status as u8), Some(status));
        }
        assert_eq!(Status::from_u8(6), None);
    }

    #[test]
    fn oversized_prefix_is_a_protocol_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_MESSAGE + 1).to_le_bytes());
        assert!(peek_len(&buf).is_err());
        assert_eq!(peek_len(&[0u8; 3]), Ok(None));
    }

    #[test]
    fn malformed_request_bodies_are_rejected() {
        assert!(decode_request(&[0u8; REQUEST_HEADER - 1]).is_none());
        assert!(decode_request(&[0u8; REQUEST_HEADER + 3]).is_none());
        assert!(decode_request(&[0u8; REQUEST_HEADER]).is_some());
    }
}

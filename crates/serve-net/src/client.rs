//! A small blocking client for the serve-net protocol — what the CI
//! smoke, the round-trip tests, and `reuse_cli serve-net --smoke` drive
//! the server with. Not a production client: one blocking socket, no
//! pipelining beyond what the caller interleaves itself.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::protocol::{
    decode_f32s, encode_client_preamble, encode_request, read_u32, read_u64, Status, MAGIC,
    RESPONSE_HEADER, VERSION,
};

/// One decoded response message.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Stream the response belongs to.
    pub stream_id: u64,
    /// Echo of the request's sequence number.
    pub seq: u32,
    /// Outcome of the frame.
    pub status: Status,
    /// Output payload (empty unless `status` is [`Status::Ok`]).
    pub payload: Vec<f32>,
}

/// A blocking protocol client over one TCP connection.
#[derive(Debug)]
pub struct NetClient {
    sock: TcpStream,
    input_len: usize,
    output_len: usize,
    scratch: Vec<u8>,
}

/// Protocol-violation error helper.
fn proto_err(msg: &str) -> std::io::Error {
    std::io::Error::new(ErrorKind::InvalidData, msg.to_string())
}

impl NetClient {
    /// Connects, performs the preamble exchange, and returns a ready
    /// client.
    ///
    /// # Errors
    ///
    /// Socket errors, or [`ErrorKind::InvalidData`] when the server's
    /// preamble is malformed.
    pub fn connect(addr: SocketAddr) -> std::io::Result<NetClient> {
        let mut sock = TcpStream::connect(addr)?;
        sock.set_nodelay(true).ok();
        let mut hello = Vec::with_capacity(8);
        encode_client_preamble(&mut hello);
        sock.write_all(&hello)?;
        let mut pre = [0u8; 16];
        sock.read_exact(&mut pre)?;
        if pre[..4] != MAGIC || read_u32(&pre, 4) != VERSION {
            return Err(proto_err("bad server preamble"));
        }
        Ok(NetClient {
            sock,
            input_len: read_u32(&pre, 8) as usize,
            output_len: read_u32(&pre, 12) as usize,
            scratch: Vec::with_capacity(1024),
        })
    }

    /// The model's input length in floats, from the server preamble.
    pub fn input_len(&self) -> usize {
        self.input_len
    }

    /// The model's output length in floats, from the server preamble.
    pub fn output_len(&self) -> usize {
        self.output_len
    }

    /// Sets the socket read timeout (None blocks forever).
    ///
    /// # Errors
    ///
    /// Propagates the socket option error.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.sock.set_read_timeout(timeout)
    }

    /// Sends one frame (fire-and-forget; pair with [`Self::recv`]).
    ///
    /// # Errors
    ///
    /// Socket write errors.
    pub fn send(
        &mut self,
        stream_id: u64,
        seq: u32,
        flags: u8,
        deadline_us: u32,
        frame: &[f32],
    ) -> std::io::Result<()> {
        self.scratch.clear();
        encode_request(&mut self.scratch, stream_id, seq, flags, deadline_us, frame);
        let buf = std::mem::take(&mut self.scratch);
        let result = self.sock.write_all(&buf);
        self.scratch = buf;
        result
    }

    /// Receives one response message (blocking).
    ///
    /// # Errors
    ///
    /// Socket read errors (including timeout), or
    /// [`ErrorKind::InvalidData`] on a malformed message.
    pub fn recv(&mut self) -> std::io::Result<Response> {
        let mut prefix = [0u8; 4];
        self.sock.read_exact(&mut prefix)?;
        let len = u32::from_le_bytes(prefix) as usize;
        if len < RESPONSE_HEADER || len > crate::protocol::MAX_MESSAGE as usize {
            return Err(proto_err("bad response length"));
        }
        let mut body = vec![0u8; len];
        self.sock.read_exact(&mut body)?;
        let status = Status::from_u8(body[12]).ok_or_else(|| proto_err("bad status byte"))?;
        let payload_bytes = &body[RESPONSE_HEADER..];
        if !payload_bytes.len().is_multiple_of(4) {
            return Err(proto_err("response payload not float-aligned"));
        }
        Ok(Response {
            stream_id: read_u64(&body, 0),
            seq: read_u32(&body, 8),
            status,
            payload: decode_f32s(payload_bytes),
        })
    }

    /// Submits one frame and blocks until *its* response arrives
    /// (responses for other in-flight seqs of the same connection are an
    /// error here — use send/recv directly for pipelined traffic),
    /// retrying [`Status::QueueFull`] with a short backoff.
    ///
    /// # Errors
    ///
    /// Socket errors, or [`ErrorKind::InvalidData`] when the response does
    /// not match the request.
    pub fn roundtrip(
        &mut self,
        stream_id: u64,
        seq: u32,
        frame: &[f32],
    ) -> std::io::Result<Response> {
        loop {
            self.send(stream_id, seq, 0, 0, frame)?;
            let resp = self.recv()?;
            if resp.stream_id != stream_id || resp.seq != seq {
                return Err(proto_err("response does not match request"));
            }
            if resp.status == Status::QueueFull {
                std::thread::sleep(Duration::from_micros(200));
                continue;
            }
            return Ok(resp);
        }
    }
}

//! The network front-end: a non-blocking TCP event loop routing protocol
//! frames to a [`ShardedServer`].
//!
//! One thread runs the poll loop (accept, read, submit, drain, write);
//! dedicated per-shard workers ([`reuse_serve::ShardWorkers`]) execute
//! frames concurrently. No external event-loop dependency: sockets are
//! `set_nonblocking` and the loop sleeps briefly when idle.
//!
//! **Stream ownership.** The first connection to submit a stream id owns
//! it; submits for a stream owned by another live connection are answered
//! [`Status::Failed`] (interleaving two connections' frames into one
//! reuse chain would corrupt both). Ownership is released when the owning
//! connection closes.

use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use reuse_core::CompiledModel;
use reuse_serve::{
    ServeError, ServerConfig, ShardWorkers, ShardedServer, SubmitOptions, SubmitResult,
};

use crate::protocol::{
    decode_request, encode_response, encode_server_preamble, peek_len, Status, FLAG_DEADLINE,
    FLAG_HIGH_PRIORITY, MAGIC, VERSION,
};

/// Read chunk size per socket per poll iteration.
const READ_CHUNK: usize = 64 * 1024;

/// Idle poll sleep when no socket made progress.
const IDLE_SLEEP: Duration = Duration::from_micros(200);

/// One accepted connection's buffers and owned streams.
struct Conn {
    sock: TcpStream,
    /// Bytes read but not yet parsed (`roff` already consumed).
    rbuf: Vec<u8>,
    roff: usize,
    /// Bytes queued for writing (`woff` already written).
    wbuf: Vec<u8>,
    woff: usize,
    /// Whether the 8-byte client preamble has been validated.
    preamble_done: bool,
    /// Stream ids this connection owns (released on close).
    streams: Vec<u64>,
    /// Set on protocol violation or socket error; reaped after the pass.
    closed: bool,
}

impl Conn {
    fn new(sock: TcpStream, input_len: u32, output_len: u32) -> Conn {
        let mut wbuf = Vec::with_capacity(4096);
        encode_server_preamble(&mut wbuf, input_len, output_len);
        Conn {
            sock,
            rbuf: Vec::with_capacity(READ_CHUNK),
            roff: 0,
            wbuf,
            woff: 0,
            preamble_done: false,
            streams: Vec::new(),
            closed: false,
        }
    }
}

/// Routing state for one owned stream.
struct StreamRoute {
    /// Slot of the owning connection.
    conn: usize,
    /// Sequence numbers of accepted frames not yet answered, oldest first.
    pending: VecDeque<u32>,
}

/// The serve-net front-end: a bound listener plus the sharded server and
/// its worker threads. Drive it with [`NetServer::run`].
pub struct NetServer {
    listener: TcpListener,
    workers: ShardWorkers,
    input_len: usize,
    output_len: usize,
    conns: Vec<Option<Conn>>,
    routes: HashMap<u64, StreamRoute>,
}

impl NetServer {
    /// Binds `addr` and builds a [`ShardedServer`] with `shards` shards
    /// over `model`, spawning one worker thread per shard. Use port 0 for
    /// an OS-assigned port ([`Self::local_addr`] reports it).
    ///
    /// # Errors
    ///
    /// I/O errors from binding; [`ServeError`] config errors are mapped to
    /// [`ErrorKind::InvalidInput`].
    pub fn bind(
        addr: SocketAddr,
        model: Arc<CompiledModel>,
        config: ServerConfig,
        shards: usize,
    ) -> std::io::Result<NetServer> {
        let input_len = model.network().input_shape().volume();
        let output_len = model.network().output_shape().volume();
        let sharded = ShardedServer::new(model, config, shards)
            .map_err(|e| std::io::Error::new(ErrorKind::InvalidInput, e.to_string()))?;
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(NetServer {
            listener,
            workers: ShardWorkers::start(Arc::new(sharded)),
            input_len,
            output_len,
            conns: Vec::new(),
            routes: HashMap::new(),
        })
    }

    /// The bound address (resolves port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket's `local_addr` error.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The underlying sharded server (snapshots, counters).
    pub fn sharded(&self) -> &Arc<ShardedServer> {
        self.workers.server()
    }

    /// Runs the event loop until `stop` is set: accepts connections, reads
    /// and validates protocol frames, submits them to the owning shard,
    /// drains completions/expiries into responses, and writes them back.
    ///
    /// # Errors
    ///
    /// Returns only listener-level I/O errors; per-connection errors close
    /// that connection.
    pub fn run(&mut self, stop: &AtomicBool) -> std::io::Result<()> {
        while !stop.load(Ordering::SeqCst) {
            let mut progressed = false;
            progressed |= self.accept_new()?;
            for slot in 0..self.conns.len() {
                progressed |= self.read_conn(slot);
            }
            progressed |= self.drain_completions();
            for slot in 0..self.conns.len() {
                progressed |= self.write_conn(slot);
            }
            self.reap_closed();
            if !progressed {
                std::thread::sleep(IDLE_SLEEP);
            }
        }
        Ok(())
    }

    /// Accepts all pending connections. Returns whether any arrived.
    fn accept_new(&mut self) -> std::io::Result<bool> {
        let mut any = false;
        loop {
            match self.listener.accept() {
                Ok((sock, _)) => {
                    sock.set_nonblocking(true)?;
                    sock.set_nodelay(true).ok();
                    let conn = Conn::new(sock, self.input_len as u32, self.output_len as u32);
                    let slot = self.conns.iter().position(Option::is_none);
                    match slot {
                        Some(s) => self.conns[s] = Some(conn),
                        None => self.conns.push(Some(conn)),
                    }
                    any = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(any),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Reads and parses everything available on one connection. Returns
    /// whether any bytes were consumed.
    fn read_conn(&mut self, slot: usize) -> bool {
        let Some(conn) = self.conns[slot].as_mut() else {
            return false;
        };
        if conn.closed {
            return false;
        }
        let mut any = false;
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match conn.sock.read(&mut chunk) {
                Ok(0) => {
                    conn.closed = true;
                    break;
                }
                Ok(n) => {
                    conn.rbuf.extend_from_slice(&chunk[..n]);
                    any = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.closed = true;
                    break;
                }
            }
        }
        self.parse_conn(slot);
        any
    }

    /// Parses complete messages out of a connection's read buffer and
    /// submits them.
    fn parse_conn(&mut self, slot: usize) {
        loop {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            let avail = &conn.rbuf[conn.roff..];
            if !conn.preamble_done {
                if avail.len() < 8 {
                    break;
                }
                let version = u32::from_le_bytes([avail[4], avail[5], avail[6], avail[7]]);
                if avail[..4] != MAGIC || version != VERSION {
                    conn.closed = true;
                    return;
                }
                conn.roff += 8;
                conn.preamble_done = true;
                continue;
            }
            let body = match peek_len(avail) {
                Err(_) => {
                    conn.closed = true;
                    return;
                }
                Ok(None) => break,
                Ok(Some(len)) => {
                    if avail.len() < 4 + len as usize {
                        break;
                    }
                    conn.roff += 4 + len as usize;
                    let start = conn.roff - len as usize;
                    conn.rbuf[start..conn.roff].to_vec()
                }
            };
            self.handle_request(slot, &body);
        }
        // Compact the read buffer once everything parseable is consumed.
        if let Some(conn) = self.conns[slot].as_mut() {
            if conn.roff > 0 {
                conn.rbuf.drain(..conn.roff);
                conn.roff = 0;
            }
        }
    }

    /// Decodes and submits one request body, queueing any immediate
    /// response.
    fn handle_request(&mut self, slot: usize, body: &[u8]) {
        let Some(req) = decode_request(body) else {
            if let Some(conn) = self.conns[slot].as_mut() {
                conn.closed = true;
            }
            return;
        };
        if req.payload.len() != self.input_len {
            self.respond(slot, req.stream_id, req.seq, Status::Failed, &[]);
            return;
        }
        match self.routes.get(&req.stream_id) {
            Some(route) if route.conn != slot => {
                // Owned by another live connection.
                self.respond(slot, req.stream_id, req.seq, Status::Failed, &[]);
                return;
            }
            Some(_) => {}
            None => {
                self.routes.insert(
                    req.stream_id,
                    StreamRoute {
                        conn: slot,
                        pending: VecDeque::new(),
                    },
                );
                if let Some(conn) = self.conns[slot].as_mut() {
                    conn.streams.push(req.stream_id);
                }
            }
        }
        let mut opts = SubmitOptions::default().tagged(req.seq as u64);
        if req.flags & FLAG_HIGH_PRIORITY != 0 {
            opts = opts.high_priority();
        }
        if req.flags & FLAG_DEADLINE != 0 {
            opts = opts.with_deadline(Duration::from_micros(u64::from(req.deadline_us)));
        }
        let result = self
            .workers
            .server()
            .submit_with(req.stream_id, &req.payload, opts);
        let status = match result {
            Ok(SubmitResult::Accepted) => {
                if let Some(route) = self.routes.get_mut(&req.stream_id) {
                    route.pending.push_back(req.seq);
                }
                return;
            }
            Ok(SubmitResult::QueueFull) => Status::QueueFull,
            Ok(SubmitResult::Shed) => Status::Shed,
            Ok(SubmitResult::DeadlineShed) => Status::DeadlineShed,
            Err(ServeError::Reuse(_)) | Err(_) => Status::Failed,
        };
        self.respond(slot, req.stream_id, req.seq, status, &[]);
    }

    /// Drains completed outputs and expiries for every routed stream into
    /// response buffers; fails pending frames of dead streams. Returns
    /// whether any response was produced.
    fn drain_completions(&mut self) -> bool {
        let mut produced = false;
        let server = Arc::clone(self.workers.server());
        let ids: Vec<u64> = self
            .routes
            .iter()
            .filter(|(_, r)| !r.pending.is_empty())
            .map(|(&id, _)| id)
            .collect();
        for id in ids {
            let Some(slot) = self.routes.get(&id).map(|r| r.conn) else {
                continue;
            };
            // The tag carried through the server is the request seq, so
            // completions and expiries pair exactly; responses are ordered
            // by submission order (position in `pending`), since a frame
            // that expired can sit between two that completed.
            let mut events: Vec<(u32, Status, Vec<f32>)> = Vec::new();
            server.drain_expired(id, |tag| {
                events.push((tag as u32, Status::Expired, Vec::new()));
            });
            server.drain_outputs_tagged(id, |tag, out| {
                events.push((tag as u32, Status::Ok, out.to_vec()));
            });
            let mut failed_pending: Vec<u32> = Vec::new();
            {
                let route = self.routes.get_mut(&id).expect("route alive");
                events.sort_by_key(|&(seq, _, _)| {
                    route
                        .pending
                        .iter()
                        .position(|&s| s == seq)
                        .unwrap_or(usize::MAX)
                });
                for &(seq, _, _) in &events {
                    route.pending.retain(|&s| s != seq);
                }
                if !route.pending.is_empty() && (server.stream_failed(id) || !server.contains(id)) {
                    // Sticky stream error or LRU eviction: queued frames
                    // will never complete. Answer everything outstanding
                    // and drop the route so a resubmit starts fresh.
                    failed_pending = route.pending.drain(..).collect();
                }
            }
            for (seq, status, payload) in events {
                produced = true;
                self.respond(slot, id, seq, status, &payload);
            }
            if !failed_pending.is_empty() {
                self.routes.remove(&id);
                if let Some(conn) = self.conns[slot].as_mut() {
                    conn.streams.retain(|&s| s != id);
                }
                for seq in failed_pending {
                    produced = true;
                    self.respond(slot, id, seq, Status::Failed, &[]);
                }
            }
        }
        produced
    }

    /// Queues one response on a connection's write buffer.
    fn respond(&mut self, slot: usize, stream_id: u64, seq: u32, status: Status, payload: &[f32]) {
        if let Some(conn) = self.conns[slot].as_mut() {
            encode_response(&mut conn.wbuf, stream_id, seq, status, payload);
        }
    }

    /// Flushes as much of one connection's write buffer as the socket
    /// accepts. Returns whether any bytes moved.
    fn write_conn(&mut self, slot: usize) -> bool {
        let Some(conn) = self.conns[slot].as_mut() else {
            return false;
        };
        if conn.closed || conn.woff >= conn.wbuf.len() {
            return false;
        }
        let mut any = false;
        while conn.woff < conn.wbuf.len() {
            match conn.sock.write(&conn.wbuf[conn.woff..]) {
                Ok(0) => {
                    conn.closed = true;
                    break;
                }
                Ok(n) => {
                    conn.woff += n;
                    any = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.closed = true;
                    break;
                }
            }
        }
        if conn.woff >= conn.wbuf.len() {
            conn.wbuf.clear();
            conn.woff = 0;
        } else if conn.woff > READ_CHUNK {
            conn.wbuf.drain(..conn.woff);
            conn.woff = 0;
        }
        any
    }

    /// Drops closed connections and releases their stream ownership.
    /// In-flight frames of released streams stay in the shard (they
    /// execute and their outputs age out of the bounded output queue).
    fn reap_closed(&mut self) {
        for slot in 0..self.conns.len() {
            let close = self.conns[slot].as_ref().is_some_and(|c| c.closed);
            if close {
                if let Some(conn) = self.conns[slot].take() {
                    for id in conn.streams {
                        self.routes.remove(&id);
                    }
                }
            }
        }
    }
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("addr", &self.listener.local_addr().ok())
            .field("conns", &self.conns.iter().flatten().count())
            .field("routes", &self.routes.len())
            .finish_non_exhaustive()
    }
}

//! Network front-end for the sharded serving tier.
//!
//! `reuse-serve-net` puts the [`reuse_serve::ShardedServer`] behind a
//! TCP socket with a length-prefixed binary frame protocol — no external
//! event-loop or serialization dependency (the build environment pins an
//! offline registry), just `std::net` non-blocking sockets polled by one
//! loop thread while per-shard workers execute frames.
//!
//! * [`protocol`] — the wire format: preamble, request/response framing,
//!   status codes.
//! * [`NetServer`] — bind + event loop (accept, parse, submit to the
//!   owning shard, drain completions, write responses).
//! * [`NetClient`] — a small blocking client used by tests, the CI
//!   smoke, and `reuse_cli serve-net --smoke`.
//!
//! Outputs returned over the wire are bit-identical to running the same
//! frames through a standalone [`reuse_core::ReuseSession`] — enforced by
//! `tests/roundtrip.rs` and by the CI smoke (`reuse_cli serve-net
//! --smoke`).

#![warn(missing_docs)]

mod client;
pub mod protocol;
mod server;

pub use client::{NetClient, Response};
pub use protocol::Status;
pub use server::NetServer;

//! Loopback round-trips through the full network stack — preamble,
//! framing, sharded submit, worker ticks, tagged drains — must return
//! outputs **bit-identical** to a standalone [`ReuseSession`] fed the
//! same frames.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use reuse_core::{CompiledModel, ReuseConfig};
use reuse_nn::{init::Rng64, Activation, Network, NetworkBuilder};
use reuse_serve::ServerConfig;
use reuse_serve_net::{NetClient, NetServer, Status};

fn mlp() -> Network {
    NetworkBuilder::new("net-mlp", 12)
        .seed(11)
        .fully_connected(24, Activation::Relu)
        .fully_connected(16, Activation::Relu)
        .fully_connected(4, Activation::Identity)
        .build()
        .unwrap()
}

/// A smooth random walk of frames, mimicking consecutive input windows.
fn walk(len: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = Rng64::new(seed);
    let mut frame: Vec<f32> = (0..dim).map(|_| rng.uniform(0.5)).collect();
    (0..len)
        .map(|_| {
            for v in &mut frame {
                *v = (*v + rng.uniform(0.05)).clamp(-1.0, 1.0);
            }
            frame.clone()
        })
        .collect()
}

fn assert_bits_eq(a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}");
    }
}

/// Starts a server on an OS-assigned loopback port; returns its address
/// and a guard that stops the event loop on drop.
fn start_server(model: Arc<CompiledModel>, shards: usize) -> (SocketAddr, ServerGuard) {
    let mut server = NetServer::bind(
        "127.0.0.1:0".parse().unwrap(),
        model,
        ServerConfig::default(),
        shards,
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let handle = std::thread::spawn(move || server.run(&stop2).unwrap());
    (
        addr,
        ServerGuard {
            stop,
            handle: Some(handle),
        },
    )
}

struct ServerGuard {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for ServerGuard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[test]
fn roundtrip_is_bit_identical_to_standalone_session() {
    let model = Arc::new(CompiledModel::new(&mlp(), &ReuseConfig::uniform(8)));
    let (addr, _guard) = start_server(Arc::clone(&model), 2);

    let mut client = NetClient::connect(addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    assert_eq!(client.input_len(), 12);
    assert_eq!(client.output_len(), 4);

    // Three streams interleaved over one connection; each must match its
    // own standalone session exactly.
    let stream_ids = [3u64, 900, 41];
    let streams: Vec<Vec<Vec<f32>>> = stream_ids
        .iter()
        .map(|&id| walk(24, 12, 1000 + id))
        .collect();
    let mut outputs: Vec<Vec<Vec<f32>>> = streams.iter().map(|_| Vec::new()).collect();
    // Index-driven on purpose: frame t of every stream is submitted before
    // frame t+1 of any, interleaving the streams over one connection.
    #[allow(clippy::needless_range_loop)]
    for t in 0..streams[0].len() {
        for (s, &id) in stream_ids.iter().enumerate() {
            let resp = client.roundtrip(id, t as u32, &streams[s][t]).unwrap();
            assert_eq!(resp.status, Status::Ok, "stream {id} frame {t}");
            outputs[s].push(resp.payload);
        }
    }

    for (s, stream) in streams.iter().enumerate() {
        let mut session = model.new_session();
        for (t, frame) in stream.iter().enumerate() {
            let expect = session.execute(frame).unwrap();
            assert_bits_eq(&outputs[s][t], expect.as_slice());
        }
    }
}

#[test]
fn pipelined_submits_complete_in_order() {
    let model = Arc::new(CompiledModel::new(&mlp(), &ReuseConfig::uniform(8)));
    let (addr, _guard) = start_server(Arc::clone(&model), 1);

    let mut client = NetClient::connect(addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    let frames = walk(16, 12, 77);
    // Fire the whole stream without waiting (fits the default queue).
    for (t, frame) in frames.iter().enumerate() {
        client.send(5, t as u32, 0, 0, frame).unwrap();
    }
    let mut session = model.new_session();
    let mut got = 0usize;
    while got < frames.len() {
        let resp = client.recv().unwrap();
        match resp.status {
            Status::Ok => {
                // In-order completion within the stream.
                assert_eq!(resp.seq as usize, got);
                let expect = session.execute(&frames[got]).unwrap();
                assert_bits_eq(&resp.payload, expect.as_slice());
                got += 1;
            }
            Status::QueueFull => {
                // Resubmit the rejected frame (and everything after it was
                // not sent yet in this test, so just retry it).
                let t = resp.seq as usize;
                std::thread::sleep(Duration::from_micros(500));
                client.send(5, resp.seq, 0, 0, &frames[t]).unwrap();
            }
            other => panic!("unexpected status {other:?}"),
        }
    }
}

#[test]
fn second_connection_cannot_hijack_a_stream() {
    let model = Arc::new(CompiledModel::new(&mlp(), &ReuseConfig::uniform(8)));
    let (addr, _guard) = start_server(model, 2);

    let mut owner = NetClient::connect(addr).unwrap();
    owner
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    let frames = walk(2, 12, 9);
    let resp = owner.roundtrip(70, 0, &frames[0]).unwrap();
    assert_eq!(resp.status, Status::Ok);

    let mut intruder = NetClient::connect(addr).unwrap();
    intruder
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    let resp = intruder.roundtrip(70, 0, &frames[1]).unwrap();
    assert_eq!(resp.status, Status::Failed, "stream 70 belongs to `owner`");

    // The owner keeps working.
    let resp = owner.roundtrip(70, 1, &frames[1]).unwrap();
    assert_eq!(resp.status, Status::Ok);
}

#[test]
fn wrong_length_frame_fails_cleanly() {
    let model = Arc::new(CompiledModel::new(&mlp(), &ReuseConfig::uniform(8)));
    let (addr, _guard) = start_server(model, 1);
    let mut client = NetClient::connect(addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    let resp = client.roundtrip(1, 0, &[0.0f32; 5]).unwrap();
    assert_eq!(resp.status, Status::Failed);
    // The connection survives and serves correct frames afterwards.
    let frame = walk(1, 12, 3).pop().unwrap();
    let resp = client.roundtrip(1, 1, &frame).unwrap();
    assert_eq!(resp.status, Status::Ok);
}

//! Property-based fuzzing of the wire-protocol parsers.
//!
//! The decode side of the protocol faces untrusted bytes from the network,
//! so the contract under test is blunt: `decode_request`, `peek_len`, and
//! preamble parsing must never panic, and malformed input — truncated
//! frames, bit flips, inflated length prefixes, arbitrary byte soup —
//! must be rejected cleanly (`None` / `Err`) rather than misparsed into
//! out-of-bounds reads.

use proptest::prelude::*;
use reuse_serve_net::protocol::{
    decode_f32s, decode_request, encode_client_preamble, encode_request, encode_server_preamble,
    peek_len, read_u32, OversizedFrame, MAGIC, MAX_MESSAGE, REQUEST_HEADER, VERSION,
};

/// Strategy for a request payload: bit-pattern-diverse floats (covers
/// NaNs, infinities, subnormals — the decoder must treat them as bytes).
fn payload() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec((0u32..=u32::MAX).prop_map(f32::from_bits), 0..24)
}

/// One fully encoded request message (length prefix + body).
fn encoded_request() -> impl Strategy<Value = Vec<u8>> {
    (
        0u64..=u64::MAX,
        0u32..=u32::MAX,
        0u8..=u8::MAX,
        0u32..=u32::MAX,
        payload(),
    )
        .prop_map(|(stream_id, seq, flags, deadline_us, payload)| {
            let mut buf = Vec::new();
            encode_request(&mut buf, stream_id, seq, flags, deadline_us, &payload);
            buf
        })
}

/// Mirrors the server's preamble check: magic then version.
fn parse_client_preamble(buf: &[u8]) -> Option<u32> {
    if buf.len() < 8 || buf[..4] != MAGIC {
        return None;
    }
    let version = read_u32(buf, 4);
    (version == VERSION).then_some(version)
}

/// Mirrors the preamble check the client runs on connect: magic, version,
/// then the model's input/output lengths.
fn parse_server_preamble(buf: &[u8]) -> Option<(u32, u32)> {
    if buf.len() < 16 || buf[..4] != MAGIC {
        return None;
    }
    if read_u32(buf, 4) != VERSION {
        return None;
    }
    Some((read_u32(buf, 8), read_u32(buf, 12)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte soup: no panic, and any accepted body is coherent.
    #[test]
    fn decode_request_survives_random_bytes(
        bytes in proptest::collection::vec(0u8..=u8::MAX, 0..128)
    ) {
        match decode_request(&bytes) {
            None => {
                prop_assert!(
                    bytes.len() < REQUEST_HEADER
                        || !(bytes.len() - REQUEST_HEADER).is_multiple_of(4)
                );
            }
            Some(req) => {
                prop_assert!(bytes.len() >= REQUEST_HEADER);
                prop_assert_eq!(4 * req.payload.len(), bytes.len() - REQUEST_HEADER);
            }
        }
    }

    /// Every strict prefix of a valid frame is rejected or, when it still
    /// spans the header and a whole number of floats, parses to a shorter
    /// payload with unchanged header fields — never a panic, never an
    /// out-of-bounds read.
    #[test]
    fn truncated_requests_reject_cleanly(frame in encoded_request(), cut in 0usize..200) {
        let body = &frame[4..]; // decode_request sees the bytes after the prefix
        let cut = cut.min(body.len());
        let truncated = &body[..cut];
        match decode_request(truncated) {
            None => {
                prop_assert!(cut < REQUEST_HEADER || !(cut - REQUEST_HEADER).is_multiple_of(4));
            }
            Some(req) => {
                // A truncation landing on a float boundary is
                // indistinguishable from a shorter frame; the header
                // fields must still match the original.
                prop_assert_eq!(4 * req.payload.len(), cut - REQUEST_HEADER);
                let full = decode_request(body).unwrap();
                prop_assert_eq!(req.stream_id, full.stream_id);
                prop_assert_eq!(req.seq, full.seq);
                prop_assert_eq!(req.flags, full.flags);
                prop_assert_eq!(req.deadline_us, full.deadline_us);
            }
        }
    }

    /// Flipping any single bit of a valid body never panics; the length is
    /// unchanged, so the body must still decode, and the float decoder is
    /// total over the corrupted payload bytes.
    #[test]
    fn bit_flipped_requests_never_panic(frame in encoded_request(), bit in 0usize..2048) {
        let mut body = frame[4..].to_vec();
        let bit = bit % (body.len() * 8);
        body[bit / 8] ^= 1 << (bit % 8);
        let req = decode_request(&body).expect("bit flip cannot change body length");
        prop_assert_eq!(4 * req.payload.len(), body.len() - REQUEST_HEADER);
        prop_assert_eq!(decode_f32s(&body[REQUEST_HEADER..]).len(), req.payload.len());
    }

    /// `peek_len` on arbitrary bytes: incomplete prefixes wait, inflated
    /// prefixes are a hard protocol error, everything else reports the
    /// exact little-endian length.
    #[test]
    fn peek_len_classifies_all_prefixes(
        bytes in proptest::collection::vec(0u8..=u8::MAX, 0..12)
    ) {
        match peek_len(&bytes) {
            Ok(None) => {
                prop_assert!(bytes.len() < 4);
            }
            Ok(Some(len)) => {
                prop_assert!(bytes.len() >= 4);
                prop_assert!(len <= MAX_MESSAGE);
                prop_assert_eq!(len, read_u32(&bytes, 0));
            }
            Err(OversizedFrame) => {
                prop_assert!(bytes.len() >= 4);
                prop_assert!(read_u32(&bytes, 0) > MAX_MESSAGE);
            }
        }
    }

    /// Inflating a valid frame's length prefix past `MAX_MESSAGE` must
    /// surface as `OversizedFrame` — the reader closes the connection
    /// instead of buffering gigabytes.
    #[test]
    fn oversized_prefix_is_a_hard_error(frame in encoded_request(), excess in 1u32..1_000_000) {
        let mut frame = frame;
        let inflated = MAX_MESSAGE.saturating_add(excess);
        frame[..4].copy_from_slice(&inflated.to_le_bytes());
        prop_assert_eq!(peek_len(&frame), Err(OversizedFrame));
    }

    /// Client and server preambles: the genuine encodings parse, and any
    /// single corrupted byte in the magic/version region is rejected.
    #[test]
    fn corrupted_preambles_are_rejected(at in 0usize..8, xor in 1u8..=255) {
        let mut client = Vec::new();
        encode_client_preamble(&mut client);
        prop_assert_eq!(parse_client_preamble(&client), Some(VERSION));
        client[at] ^= xor;
        prop_assert_eq!(parse_client_preamble(&client), None);

        let mut server = Vec::new();
        encode_server_preamble(&mut server, 12, 4);
        prop_assert_eq!(parse_server_preamble(&server), Some((12, 4)));
        server[at] ^= xor;
        prop_assert_eq!(parse_server_preamble(&server), None);
    }

    /// Truncated preambles (partial handshake reads) never panic and
    /// never parse.
    #[test]
    fn truncated_preambles_wait_or_reject(cut in 0usize..16) {
        let mut server = Vec::new();
        encode_server_preamble(&mut server, 7, 3);
        let cut = cut.min(server.len() - 1);
        prop_assert_eq!(parse_server_preamble(&server[..cut]), None);
        let client_cut = cut.min(7);
        let mut client = Vec::new();
        encode_client_preamble(&mut client);
        prop_assert_eq!(parse_client_preamble(&client[..client_cut]), None);
    }

    /// Length-prefix / body agreement: for a genuine encoding, `peek_len`
    /// reports exactly the body length and the body decodes to the
    /// original payload size.
    #[test]
    fn encoded_frames_self_describe(frame in encoded_request()) {
        let len = peek_len(&frame).unwrap().unwrap() as usize;
        prop_assert_eq!(len, frame.len() - 4);
        let req = decode_request(&frame[4..4 + len]).unwrap();
        prop_assert_eq!(4 * req.payload.len(), len - REQUEST_HEADER);
    }
}

//! Property-based tests of the accelerator simulator's accounting.

use proptest::prelude::*;
use reuse_accel::{tiles, AcceleratorConfig, SimInput, Simulator};
use reuse_core::{ExecutionTrace, LayerTrace, TraceKind};
use reuse_nn::LayerKind;

fn arbitrary_layer() -> impl Strategy<Value = LayerTrace> {
    (
        1u64..10_000,
        1u64..5_000,
        0u64..100,
        proptest::sample::select(vec![
            TraceKind::ScratchFp32,
            TraceKind::ScratchQuantized,
            TraceKind::Incremental,
        ]),
        proptest::sample::select(vec![LayerKind::Fc, LayerKind::Conv, LayerKind::Recurrent]),
    )
        .prop_map(|(n_in, n_out, changed_pct, mode, kind)| {
            let n_changed = (n_in * changed_pct / 100).min(n_in);
            let macs_total = n_in * n_out;
            let macs_performed = match mode {
                TraceKind::Incremental => n_changed * n_out,
                _ => macs_total,
            };
            LayerTrace {
                name: "l".into(),
                kind,
                mode,
                n_inputs: n_in,
                n_changed,
                n_outputs: n_out,
                n_params: macs_total,
                macs_total,
                macs_performed,
            }
        })
}

fn arbitrary_traces() -> impl Strategy<Value = Vec<ExecutionTrace>> {
    proptest::collection::vec(
        proptest::collection::vec(arbitrary_layer(), 1..5)
            .prop_map(|layers| ExecutionTrace { layers }),
        1..10,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reuse_never_does_more_macs_than_baseline(traces in arbitrary_traces()) {
        let sim = Simulator::new(AcceleratorConfig::paper());
        let input = SimInput {
            name: "p",
            traces: &traces,
            model_bytes: 8 << 20,
            executions_per_sequence: 100,
            activations_spill: false,
        };
        let base = sim.simulate_baseline(&input);
        let reuse = sim.simulate_reuse(&input);
        prop_assert!(reuse.macs <= base.macs);
        prop_assert!(reuse.edram_bytes <= base.edram_bytes);
    }

    #[test]
    fn energy_components_sum_to_total(traces in arbitrary_traces()) {
        let sim = Simulator::new(AcceleratorConfig::paper());
        let input = SimInput {
            name: "p",
            traces: &traces,
            model_bytes: 4 << 20,
            executions_per_sequence: 50,
            activations_spill: true,
        };
        for report in [sim.simulate_baseline(&input), sim.simulate_reuse(&input)] {
            let sum: f64 = reuse_accel::COMPONENTS
                .iter()
                .map(|&c| report.energy.component(c))
                .sum();
            prop_assert!((sum - report.energy_j()).abs() <= 1e-9 * report.energy_j().max(1.0));
            prop_assert!(report.energy_j() >= 0.0);
            prop_assert!(report.seconds >= 0.0);
        }
    }

    #[test]
    fn more_tiles_never_slow_down(traces in arbitrary_traces(), tiles_a in 1usize..5, extra in 1usize..5) {
        let tiles_b = tiles_a + extra;
        let mk = |tiles| Simulator::new(AcceleratorConfig { tiles, ..AcceleratorConfig::paper() });
        let input = SimInput {
            name: "p",
            traces: &traces,
            model_bytes: 1 << 20,
            executions_per_sequence: 100,
            activations_spill: false,
        };
        let a = mk(tiles_a).simulate_baseline(&input);
        let b = mk(tiles_b).simulate_baseline(&input);
        prop_assert!(b.cycles <= a.cycles, "{} tiles {} cycles vs {} tiles {} cycles", tiles_a, a.cycles, tiles_b, b.cycles);
    }

    #[test]
    fn tile_distribution_conserves_macs(layer in arbitrary_layer(), tiles_n in 1usize..9) {
        let a = tiles::distribute(&layer, tiles_n);
        // Conservation up to the per-unit rounding.
        let total = a.total();
        let diff = total.abs_diff(layer.macs_performed);
        prop_assert!(diff <= tiles_n as u64 * 4, "total {total} vs performed {} (diff {diff})", layer.macs_performed);
        // Critical tile never smaller than the perfect split.
        prop_assert!(a.critical() as f64 >= total as f64 / tiles_n as f64 - 1.0);
        prop_assert!(a.imbalance() >= 0.999);
    }

    #[test]
    fn fixed8_never_uses_more_energy_than_fp32(traces in arbitrary_traces()) {
        let input = SimInput {
            name: "p",
            traces: &traces,
            model_bytes: 8 << 20,
            executions_per_sequence: 100,
            activations_spill: false,
        };
        let f32_r = Simulator::new(AcceleratorConfig::paper()).simulate_baseline(&input);
        let q8_r = Simulator::new(AcceleratorConfig::paper_fixed8()).simulate_baseline(&input);
        prop_assert!(q8_r.energy_j() <= f32_r.energy_j());
    }
}

//! Energy model of the accelerator.
//!
//! The paper characterizes combinational logic with Synopsys Design
//! Compiler, memories with CACTI-P and main memory with the MICRON LPDDR4
//! power model, all at 32 nm low power / 0.78 V. We substitute a documented
//! constant table in the same ballpark (see DESIGN.md): what the experiments
//! report are *relative* energies, which depend only on the ratios between
//! these constants, and the ratios follow the well-known ordering
//!
//! ```text
//! DRAM byte  ≫  eDRAM byte  >  SRAM byte  >  FP32 mul  >  FP32 add
//! ```
//!
//! Per-component static power is integrated over simulated runtime, so
//! speedups also cut leakage energy, as in the paper.

use crate::Precision;

/// A hardware component of the accelerator, as broken down in paper Fig. 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// The eDRAM Weights Buffer.
    WeightsBuffer,
    /// The SRAM I/O Buffer (inputs, outputs, indices).
    IoBuffer,
    /// The Compute Engine (FP multipliers/adders, quantization, comparison).
    ComputeEngine,
    /// Off-chip LPDDR4 main memory.
    MainMemory,
    /// Control unit, data master, routers, centroid table.
    Other,
}

/// All components, in the order reports print them.
pub const COMPONENTS: [Component; 5] = [
    Component::WeightsBuffer,
    Component::IoBuffer,
    Component::ComputeEngine,
    Component::MainMemory,
    Component::Other,
];

impl Component {
    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            Component::WeightsBuffer => "eDRAM (weights)",
            Component::IoBuffer => "I/O buffer",
            Component::ComputeEngine => "compute engine",
            Component::MainMemory => "main memory",
            Component::Other => "control+other",
        }
    }
}

/// Per-operation and per-byte energies plus per-component static power.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// Energy of one multiply, joules.
    pub mul_j: f64,
    /// Energy of one add, joules.
    pub add_j: f64,
    /// Energy of quantizing one input (divide+round, done in the CE), joules.
    pub quant_j: f64,
    /// Energy of comparing a quantized input against the stored index, joules.
    pub compare_j: f64,
    /// eDRAM access energy per byte, joules.
    pub edram_j_per_byte: f64,
    /// I/O-buffer SRAM access energy per byte, joules.
    pub sram_j_per_byte: f64,
    /// LPDDR4 access energy per byte, joules.
    pub dram_j_per_byte: f64,
    /// Static power per component, watts.
    pub static_w: StaticPower,
}

/// Static (leakage) power per component, watts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticPower {
    /// eDRAM Weights Buffer leakage.
    pub weights_buffer: f64,
    /// I/O Buffer leakage.
    pub io_buffer: f64,
    /// Compute Engine leakage.
    pub compute_engine: f64,
    /// Control and interconnect leakage.
    pub other: f64,
}

impl StaticPower {
    /// Total static power in watts.
    pub fn total(&self) -> f64 {
        self.weights_buffer + self.io_buffer + self.compute_engine + self.other
    }
}

impl EnergyModel {
    /// The 32 nm low-power constant table for a given datapath precision.
    ///
    /// FP32 op energies follow the published 45 nm figures (mul ≈ 3.7 pJ,
    /// add ≈ 0.9 pJ) scaled mildly for 32 nm; memory constants are chosen in
    /// the CACTI-P / MICRON ballpark so that weight fetches from eDRAM
    /// dominate, as paper Fig. 11 shows.
    pub fn for_precision(precision: Precision) -> Self {
        match precision {
            Precision::Fp32 => EnergyModel {
                mul_j: 3.1e-12,
                add_j: 0.9e-12,
                quant_j: 3.1e-12, // one FP multiply-round against 1/step
                compare_j: 0.3e-12,
                edram_j_per_byte: 4.5e-12,
                sram_j_per_byte: 0.6e-12,
                dram_j_per_byte: 30e-12,
                static_w: StaticPower {
                    weights_buffer: 0.150,
                    io_buffer: 0.020,
                    compute_engine: 0.060,
                    other: 0.030,
                },
            },
            // 8-bit fixed point: integer ops are an order of magnitude
            // cheaper and every stored byte count is already 4x smaller.
            Precision::Fixed8 => EnergyModel {
                mul_j: 0.25e-12,
                add_j: 0.04e-12,
                quant_j: 0.25e-12,
                compare_j: 0.05e-12,
                edram_j_per_byte: 4.5e-12,
                sram_j_per_byte: 0.6e-12,
                dram_j_per_byte: 30e-12,
                static_w: StaticPower {
                    weights_buffer: 0.150,
                    io_buffer: 0.020,
                    compute_engine: 0.020,
                    other: 0.030,
                },
            },
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::for_precision(Precision::Fp32)
    }
}

/// Energy attributed to each component, joules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// eDRAM Weights Buffer (dynamic + static).
    pub weights_buffer: f64,
    /// I/O Buffer (dynamic + static).
    pub io_buffer: f64,
    /// Compute Engine (dynamic + static).
    pub compute_engine: f64,
    /// Main memory (dynamic only; its background power is not modeled).
    pub main_memory: f64,
    /// Control and interconnect.
    pub other: f64,
}

impl EnergyBreakdown {
    /// Total energy in joules.
    pub fn total(&self) -> f64 {
        self.weights_buffer + self.io_buffer + self.compute_engine + self.main_memory + self.other
    }

    /// Energy of one component.
    pub fn component(&self, c: Component) -> f64 {
        match c {
            Component::WeightsBuffer => self.weights_buffer,
            Component::IoBuffer => self.io_buffer,
            Component::ComputeEngine => self.compute_engine,
            Component::MainMemory => self.main_memory,
            Component::Other => self.other,
        }
    }

    /// Fraction of the total attributed to one component (0 when empty).
    pub fn fraction(&self, c: Component) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            self.component(c) / t
        }
    }

    /// Accumulates another breakdown into this one.
    pub fn accumulate(&mut self, other: &EnergyBreakdown) {
        self.weights_buffer += other.weights_buffer;
        self.io_buffer += other.io_buffer;
        self.compute_engine += other.compute_engine;
        self.main_memory += other.main_memory;
        self.other += other.other;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_ordering_holds() {
        let m = EnergyModel::default();
        assert!(m.dram_j_per_byte > m.edram_j_per_byte);
        assert!(m.edram_j_per_byte > m.sram_j_per_byte);
        assert!(m.mul_j > m.add_j);
        // A 4-byte eDRAM weight fetch costs more than the MAC using it.
        assert!(4.0 * m.edram_j_per_byte > m.mul_j + m.add_j);
    }

    #[test]
    fn fixed8_ops_cheaper() {
        let f = EnergyModel::for_precision(Precision::Fixed8);
        let fl = EnergyModel::for_precision(Precision::Fp32);
        assert!(f.mul_j < fl.mul_j / 5.0);
        assert!(f.add_j < fl.add_j);
    }

    #[test]
    fn breakdown_sums_and_fractions() {
        let mut b = EnergyBreakdown {
            weights_buffer: 6.0,
            io_buffer: 1.0,
            compute_engine: 2.0,
            main_memory: 0.5,
            other: 0.5,
        };
        assert!((b.total() - 10.0).abs() < 1e-12);
        assert!((b.fraction(Component::WeightsBuffer) - 0.6).abs() < 1e-12);
        let sum: f64 = COMPONENTS.iter().map(|&c| b.fraction(c)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        b.accumulate(&b.clone());
        assert!((b.total() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_fraction_is_zero() {
        let b = EnergyBreakdown::default();
        assert_eq!(b.fraction(Component::IoBuffer), 0.0);
    }

    #[test]
    fn static_power_total() {
        let s = EnergyModel::default().static_w;
        assert!((s.total() - 0.26).abs() < 1e-9);
    }
}

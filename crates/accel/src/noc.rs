//! Ring interconnect between tiles (paper Section IV-E).
//!
//! Each tile has a router; the tiles form a unidirectional ring. After a
//! layer finishes, the outputs computed by each tile must reach whichever
//! tiles consume them as inputs for the next layer. With the paper's work
//! distribution (neurons/filters split by output index, every tile reading
//! the full input vector), each output value crosses on average half the
//! ring.
//!
//! The model quantifies the ring's bandwidth-time and energy so the "small
//! overheads" claim covers the interconnect too.

use crate::AcceleratorConfig;

/// Ring traffic for redistributing one layer's outputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RingTraffic {
    /// Total byte-hops over the ring (bytes × hops each byte travels).
    pub byte_hops: u64,
    /// Cycles the redistribution occupies the ring (pipelined, all links
    /// active: byte-hops over links × link width).
    pub cycles: u64,
    /// Energy in joules at the configured per-byte-hop cost.
    pub energy_j: f64,
}

/// Energy to move one byte across one ring hop (router + link, 32 nm).
pub const RING_J_PER_BYTE_HOP: f64 = 0.18e-12;

/// Bytes each ring link moves per cycle.
pub const RING_BYTES_PER_CYCLE: u64 = 16;

/// Traffic to make every tile hold the full output vector of a layer
/// (the next layer's input), given each tile produced an equal share.
///
/// With `t` tiles, each tile's share must reach the other `t−1` tiles; on a
/// unidirectional ring a value forwarded tile-to-tile travels `t−1` hops to
/// visit everyone, so byte-hops = `bytes × (t−1)`.
pub fn broadcast_outputs(n_outputs: u64, config: &AcceleratorConfig) -> RingTraffic {
    let t = config.tiles.max(1) as u64;
    let bytes = n_outputs * config.bytes_per_value();
    let byte_hops = bytes * (t - 1);
    // All `t` links run in parallel; each byte-hop is one link-cycle of
    // RING_BYTES_PER_CYCLE capacity.
    let cycles = byte_hops.div_ceil(RING_BYTES_PER_CYCLE * t);
    RingTraffic {
        byte_hops,
        cycles,
        energy_j: byte_hops as f64 * RING_J_PER_BYTE_HOP,
    }
}

/// Ring overhead of a whole execution relative to its compute cycles:
/// returns `(ring_cycles, compute_cycles, overhead_fraction)`.
pub fn execution_overhead(
    layer_outputs: &[u64],
    compute_cycles: u64,
    config: &AcceleratorConfig,
) -> (u64, u64, f64) {
    let ring: u64 = layer_outputs
        .iter()
        .map(|&n| broadcast_outputs(n, config).cycles)
        .sum();
    let frac = if compute_cycles == 0 {
        0.0
    } else {
        ring as f64 / compute_cycles as f64
    };
    (ring, compute_cycles, frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_tile_needs_no_ring() {
        let config = AcceleratorConfig {
            tiles: 1,
            ..AcceleratorConfig::paper()
        };
        let t = broadcast_outputs(2000, &config);
        assert_eq!(t.byte_hops, 0);
        assert_eq!(t.cycles, 0);
        assert_eq!(t.energy_j, 0.0);
    }

    #[test]
    fn byte_hops_scale_with_tiles_minus_one() {
        let mk = |tiles| AcceleratorConfig {
            tiles,
            ..AcceleratorConfig::paper()
        };
        let t2 = broadcast_outputs(1000, &mk(2));
        let t4 = broadcast_outputs(1000, &mk(4));
        assert_eq!(t2.byte_hops, 1000 * 4);
        assert_eq!(t4.byte_hops, 1000 * 4 * 3);
        assert!(t4.energy_j > t2.energy_j);
    }

    #[test]
    fn kaldi_layer_ring_overhead_is_negligible() {
        // Kaldi FC3: 2000 outputs redistributed vs 400x2000/128 compute
        // cycles — the ring must be in the low percents.
        let config = AcceleratorConfig::paper();
        let compute = (400u64 * 2000).div_ceil(128);
        let (ring, _, frac) = execution_overhead(&[2000], compute, &config);
        assert!(ring > 0);
        assert!(frac < 0.10, "ring overhead {frac}");
    }

    #[test]
    fn overhead_fraction_handles_zero_compute() {
        let config = AcceleratorConfig::paper();
        let (_, _, frac) = execution_overhead(&[100], 0, &config);
        assert_eq!(frac, 0.0);
    }
}

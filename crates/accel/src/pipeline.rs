//! Cycle-level model of the reuse datapath pipeline (paper Fig. 7).
//!
//! The analytical simulator in [`crate::Simulator`] charges `macs / lanes`
//! cycles per layer. This module models the actual five-stage pipeline the
//! paper describes to validate that shortcut:
//!
//! ```text
//! RD  : read one input (+ its stored index) from the I/O buffer
//! QC  : quantize the input, compare against the stored index
//! WF  : fetch the M weights of that input from the weights buffer
//! MUL : M multipliers compute (c' − c) · w  (or in · w when from scratch)
//! ACC : M adders update the output partial sums / buffered outputs
//! ```
//!
//! One input enters per cycle. An *unchanged* input retires at QC without
//! occupying WF/MUL/ACC — this is where the reuse cycles go away. Inputs
//! feeding more outputs than there are lanes occupy the back-end for
//! `ceil(fanout / lanes)` cycles, stalling the front end.
//!
//! The model is deliberately small: single-issue front end, no bank
//! conflicts (the paper's memories are "highly multi-banked"), perfect
//! double buffering against DRAM. Its purpose is to bound the error of the
//! analytical model, which the tests do.

/// Per-layer pipeline parameters for one execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineLayer {
    /// Inputs entering the pipeline.
    pub n_inputs: u64,
    /// Inputs whose quantized index changed (occupy the back end).
    pub n_changed: u64,
    /// Outputs each changed input must update (M for FC layers, k·k·f for
    /// convolutions).
    pub fanout: u64,
    /// Whether the quantize/compare front end is active (reuse mode).
    pub quantize: bool,
}

/// Pipeline depth in stages (RD, QC, WF, MUL, ACC).
pub const STAGES: u64 = 5;

/// Simulates one layer execution through the pipeline, returning cycles.
///
/// The front end issues one input per cycle; a changed input occupies the
/// back end for `ceil(fanout / lanes)` cycles, back-pressuring the front
/// end when that exceeds one cycle. Fill and drain add `STAGES` cycles.
pub fn layer_cycles(layer: &PipelineLayer, lanes: u64) -> u64 {
    let lanes = lanes.max(1);
    let back_end_per_changed = layer.fanout.div_ceil(lanes).max(1);
    let unchanged = layer.n_inputs - layer.n_changed.min(layer.n_inputs);
    // Unchanged inputs retire at the QC stage: one cycle each, fully
    // pipelined. Changed inputs occupy the back end.
    let issue_cycles = unchanged + layer.n_changed * back_end_per_changed;
    issue_cycles + STAGES
}

/// Simulates a whole execution (sum over layers, no inter-layer overlap —
/// layers are dependent).
pub fn execution_cycles(layers: &[PipelineLayer], lanes: u64) -> u64 {
    layers.iter().map(|l| layer_cycles(l, lanes)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_reused_layer_costs_one_cycle_per_input() {
        let l = PipelineLayer {
            n_inputs: 400,
            n_changed: 0,
            fanout: 2000,
            quantize: true,
        };
        assert_eq!(layer_cycles(&l, 128), 400 + STAGES);
    }

    #[test]
    fn from_scratch_matches_analytical_within_pipeline_overheads() {
        // Kaldi FC3 from scratch: 400 inputs x 2000 outputs on 128 lanes.
        let l = PipelineLayer {
            n_inputs: 400,
            n_changed: 400,
            fanout: 2000,
            quantize: false,
        };
        let pipeline = layer_cycles(&l, 128);
        let analytical = (400u64 * 2000).div_ceil(128);
        // ceil(2000/128) = 16 > 2000/128 = 15.6: per-input rounding makes
        // the pipeline model slightly pessimistic, never optimistic.
        assert!(pipeline >= analytical);
        let err = pipeline as f64 / analytical as f64;
        assert!(err < 1.10, "pipeline {pipeline} vs analytical {analytical}");
    }

    #[test]
    fn reuse_cycles_scale_with_changed_inputs() {
        let changed = |n| PipelineLayer {
            n_inputs: 400,
            n_changed: n,
            fanout: 2000,
            quantize: true,
        };
        let c0 = layer_cycles(&changed(0), 128);
        let c100 = layer_cycles(&changed(100), 128);
        let c400 = layer_cycles(&changed(400), 128);
        assert!(c0 < c100 && c100 < c400);
        // 100 changed inputs => 100·16 back-end cycles + 300 pass-through.
        assert_eq!(c100, 300 + 100 * 16 + STAGES);
        // Speedup of 75% similarity over scratch approaches 1/(1-0.75)
        // when fanout >> lanes.
        let speedup = c400 as f64 / c100 as f64;
        assert!(speedup > 3.0 && speedup < 4.1, "speedup {speedup}");
    }

    #[test]
    fn small_fanout_is_front_end_bound() {
        // A layer whose fanout fits the lanes retires one input per cycle
        // regardless of how many changed.
        let l = PipelineLayer {
            n_inputs: 1000,
            n_changed: 1000,
            fanout: 64,
            quantize: true,
        };
        assert_eq!(layer_cycles(&l, 128), 1000 + STAGES);
    }

    #[test]
    fn execution_sums_layers() {
        let a = PipelineLayer {
            n_inputs: 10,
            n_changed: 0,
            fanout: 100,
            quantize: true,
        };
        let b = PipelineLayer {
            n_inputs: 20,
            n_changed: 20,
            fanout: 256,
            quantize: true,
        };
        assert_eq!(
            execution_cycles(&[a, b], 128),
            layer_cycles(&a, 128) + layer_cycles(&b, 128)
        );
    }

    #[test]
    fn zero_lanes_clamped() {
        let l = PipelineLayer {
            n_inputs: 4,
            n_changed: 4,
            fanout: 4,
            quantize: false,
        };
        assert_eq!(layer_cycles(&l, 0), 4 * 4 + STAGES);
    }
}

//! Multi-tile work distribution (paper Section IV-E).
//!
//! Multiple accelerator tiles share one chip, connected in a ring. Work is
//! distributed per layer family:
//!
//! * **FC layers** — output neurons are split evenly across tiles.
//! * **Convolutional layers** — filters (output feature maps) are split.
//! * **Recurrent layers** — the four LSTM gates are split across tiles.
//!
//! The cycle cost of a layer is then governed by the most-loaded tile, so
//! uneven splits (e.g. 3482 Kaldi senones over 4 tiles, or 4 gates over 8
//! tiles) cost real cycles. [`distribute`] captures that.

use reuse_core::LayerTrace;
use reuse_nn::LayerKind;

/// MAC assignment of one layer execution across tiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileAssignment {
    /// MACs assigned to each tile.
    pub per_tile_macs: Vec<u64>,
}

impl TileAssignment {
    /// Total MACs across tiles.
    pub fn total(&self) -> u64 {
        self.per_tile_macs.iter().sum()
    }

    /// MACs on the most-loaded tile — what the layer's latency follows.
    pub fn critical(&self) -> u64 {
        self.per_tile_macs.iter().copied().max().unwrap_or(0)
    }

    /// Load imbalance: critical-tile MACs over the perfect split (1.0 is
    /// ideal).
    pub fn imbalance(&self) -> f64 {
        let n = self.per_tile_macs.len() as f64;
        let total = self.total() as f64;
        if total == 0.0 {
            return 1.0;
        }
        self.critical() as f64 / (total / n)
    }

    /// Compute cycles on the configured lanes per tile.
    pub fn cycles(&self, lanes_per_tile: u64) -> u64 {
        self.critical().div_ceil(lanes_per_tile.max(1))
    }
}

/// Splits `units` work units across `tiles` as evenly as integer division
/// allows, then scales to MACs-per-unit.
fn split_units(units: u64, tiles: usize, macs_per_unit: f64) -> TileAssignment {
    let tiles = tiles.max(1) as u64;
    let base = units / tiles;
    let extra = units % tiles;
    let per_tile_macs = (0..tiles)
        .map(|t| {
            let u = base + u64::from(t < extra);
            (u as f64 * macs_per_unit).round() as u64
        })
        .collect();
    TileAssignment { per_tile_macs }
}

/// Distributes one layer execution across tiles per the paper's policy.
///
/// The trace's `macs_performed` are divided by the layer's parallel units:
/// output neurons (FC), output feature maps (conv — the trace does not
/// carry the filter count, so output elements stand in as the unit, which
/// splits identically), or the four LSTM gates.
pub fn distribute(trace: &LayerTrace, tiles: usize) -> TileAssignment {
    match trace.kind {
        // Passthrough fallbacks recompute in full every frame; their MACs
        // split across tiles by output element like FC/conv.
        LayerKind::Fc | LayerKind::Conv | LayerKind::Passthrough => {
            let units = trace.n_outputs.max(1);
            let macs_per_unit = trace.macs_performed as f64 / units as f64;
            split_units(units, tiles, macs_per_unit)
        }
        LayerKind::Recurrent => {
            // Four gates; each tile takes whole gates (paper IV-E). With
            // more tiles than gates, surplus tiles idle for this layer.
            let gates = 4u64;
            let macs_per_gate = trace.macs_performed as f64 / gates as f64;
            let tiles_used = tiles.max(1);
            let mut per_tile = vec![0u64; tiles_used];
            for g in 0..gates {
                per_tile[(g as usize) % tiles_used] += macs_per_gate.round() as u64;
            }
            TileAssignment {
                per_tile_macs: per_tile,
            }
        }
        LayerKind::Pool | LayerKind::Reshape => TileAssignment {
            per_tile_macs: vec![0; tiles.max(1)],
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reuse_core::TraceKind;

    fn fc_trace(n_out: u64, macs: u64) -> LayerTrace {
        LayerTrace {
            name: "fc".into(),
            kind: LayerKind::Fc,
            mode: TraceKind::Incremental,
            n_inputs: 100,
            n_changed: 10,
            n_outputs: n_out,
            n_params: 100 * n_out,
            macs_total: macs * 4,
            macs_performed: macs,
        }
    }

    #[test]
    fn even_split_is_balanced() {
        let a = distribute(&fc_trace(2000, 800_000), 4);
        assert_eq!(a.per_tile_macs.len(), 4);
        assert_eq!(a.total(), 800_000);
        assert!((a.imbalance() - 1.0).abs() < 1e-9);
        assert_eq!(a.cycles(32), 200_000 / 32);
    }

    #[test]
    fn uneven_neuron_counts_cost_the_remainder() {
        // 3482 senones over 4 tiles: 871/871/870/870.
        let a = distribute(&fc_trace(3482, 3482 * 400), 4);
        assert_eq!(a.critical(), 871 * 400);
        assert!(a.imbalance() > 1.0);
        assert!(a.imbalance() < 1.001);
    }

    #[test]
    fn lstm_gates_map_to_tiles() {
        let trace = LayerTrace {
            name: "bilstm".into(),
            kind: LayerKind::Recurrent,
            mode: TraceKind::Incremental,
            n_inputs: 960,
            n_changed: 100,
            n_outputs: 640,
            n_params: 1_228_800,
            macs_total: 1_228_800,
            macs_performed: 400_000,
        };
        // 4 tiles: one gate each, perfect balance.
        let a4 = distribute(&trace, 4);
        assert!((a4.imbalance() - 1.0).abs() < 1e-9);
        // 8 tiles: four idle -> imbalance 2x.
        let a8 = distribute(&trace, 8);
        assert!((a8.imbalance() - 2.0).abs() < 1e-9);
        // 2 tiles: two gates each.
        let a2 = distribute(&trace, 2);
        assert!((a2.imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn passive_layers_cost_nothing() {
        let trace = LayerTrace {
            name: "pool".into(),
            kind: LayerKind::Pool,
            mode: TraceKind::ScratchFp32,
            n_inputs: 100,
            n_changed: 100,
            n_outputs: 25,
            n_params: 0,
            macs_total: 0,
            macs_performed: 0,
        };
        let a = distribute(&trace, 4);
        assert_eq!(a.critical(), 0);
        assert_eq!(a.cycles(32), 0);
    }

    #[test]
    fn single_tile_takes_everything() {
        let a = distribute(&fc_trace(100, 10_000), 1);
        assert_eq!(a.per_tile_macs, vec![10_000]);
    }
}

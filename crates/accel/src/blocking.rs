//! CNN block scheduling (paper Section IV-C / Fig. 8).
//!
//! Convolutional feature maps exceed the I/O buffer, so the accelerator
//! stages one `block × block` tile per input feature map and one per output
//! feature map, processing inputs block by block. The paper picks 16×16×1
//! blocks as "a good trade-off between on-chip storage requirements and
//! memory bandwidth usage" (Section V) — this module makes that tradeoff
//! computable:
//!
//! * smaller blocks need less I/O-buffer capacity, but each input block's
//!   corrections touch output positions up to `k−1` pixels beyond the block
//!   edge, so the staged output tiles carry a halo that is re-transferred
//!   per neighboring block — bandwidth grows as blocks shrink;
//! * larger blocks amortize the halo but need a bigger I/O buffer.

/// Geometry of one blocked convolutional layer execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockedConv {
    /// Input feature maps.
    pub in_channels: usize,
    /// Output feature maps.
    pub out_channels: usize,
    /// Input feature-map height.
    pub h: usize,
    /// Input feature-map width.
    pub w: usize,
    /// Kernel side (square kernels; the temporal dimension of 3D kernels
    /// stages whole frames and does not change the per-plane analysis).
    pub k: usize,
    /// Block side length in pixels.
    pub block: usize,
}

/// Staging and traffic costs of one blocked execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockingCosts {
    /// I/O-buffer bytes needed: one input block per input map + one haloed
    /// output block per output map (4 bytes per value).
    pub io_buffer_bytes: u64,
    /// Extra I/O-buffer bytes for the reuse scheme's staged indices
    /// (1 byte per staged input).
    pub index_bytes: u64,
    /// Main-memory traffic per execution in bytes: every input block read
    /// once, every output tile (with halo) read and written once.
    pub dram_bytes: u64,
}

impl BlockedConv {
    /// Number of blocks along one axis.
    fn blocks_along(&self, extent: usize) -> u64 {
        (extent as u64).div_ceil(self.block as u64)
    }

    /// Total input blocks per feature map.
    pub fn blocks_per_map(&self) -> u64 {
        self.blocks_along(self.h) * self.blocks_along(self.w)
    }

    /// Computes the staging and traffic costs.
    pub fn costs(&self) -> BlockingCosts {
        let b = self.block as u64;
        let halo = (self.k as u64).saturating_sub(1);
        let haloed = b + halo;
        let in_block_bytes = b * b * 4;
        let out_block_bytes = haloed * haloed * 4;
        let io_buffer_bytes =
            self.in_channels as u64 * in_block_bytes + self.out_channels as u64 * out_block_bytes;
        let index_bytes = self.in_channels as u64 * b * b;

        // Inputs stream exactly once. Output tiles are read before
        // correction and written after; adjacent tiles overlap by the halo,
        // so each axis transfers its pixels plus one halo strip per block
        // row/column.
        let input_traffic = self.in_channels as u64 * (self.h * self.w) as u64 * 4;
        let ext_h = self.h as u64 + halo * self.blocks_along(self.h);
        let ext_w = self.w as u64 + halo * self.blocks_along(self.w);
        let output_traffic = 2 * self.out_channels as u64 * ext_h * ext_w * 4;
        BlockingCosts {
            io_buffer_bytes,
            index_bytes,
            dram_bytes: input_traffic + output_traffic,
        }
    }
}

/// Sweeps block sizes for one layer geometry, returning
/// `(block, io_buffer_bytes + index_bytes, dram_bytes)` triples.
pub fn block_size_sweep(layer: &BlockedConv, blocks: &[usize]) -> Vec<(usize, u64, u64)> {
    blocks
        .iter()
        .map(|&block| {
            let c = BlockedConv { block, ..*layer }.costs();
            (block, c.io_buffer_bytes + c.index_bytes, c.dram_bytes)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// C3D CONV6: 512 -> 512 maps at 14x14, 3x3 spatial kernel.
    fn c3d_conv6() -> BlockedConv {
        BlockedConv {
            in_channels: 512,
            out_channels: 512,
            h: 14,
            w: 14,
            k: 3,
            block: 16,
        }
    }

    #[test]
    fn paper_block_size_fits_io_buffer() {
        // With 16x16 blocks the staging for the largest C3D layer must fit
        // the paper's 1280 KB reuse I/O buffer.
        let c = c3d_conv6().costs();
        assert!(
            c.io_buffer_bytes + c.index_bytes <= 1280 * 1024 + 512 * 1024,
            "staging {} bytes",
            c.io_buffer_bytes + c.index_bytes
        );
        // And the index area is in the 128 KB ballpark Table III reports.
        assert_eq!(c.index_bytes, 512 * 16 * 16);
    }

    #[test]
    fn smaller_blocks_less_buffer_more_bandwidth() {
        let layer = BlockedConv {
            in_channels: 64,
            out_channels: 128,
            h: 56,
            w: 56,
            k: 3,
            block: 0,
        };
        let sweep = block_size_sweep(&layer, &[4, 8, 16, 32]);
        for pair in sweep.windows(2) {
            let (_, io_a, dram_a) = pair[0];
            let (_, io_b, dram_b) = pair[1];
            assert!(io_a < io_b, "buffer must grow with block size");
            assert!(dram_a >= dram_b, "bandwidth must shrink with block size");
        }
    }

    #[test]
    fn halo_vanishes_for_1x1_kernels() {
        let layer = BlockedConv {
            in_channels: 8,
            out_channels: 8,
            h: 32,
            w: 32,
            k: 1,
            block: 16,
        };
        let c = layer.costs();
        // No halo: output tiles equal input tiles.
        assert_eq!(c.io_buffer_bytes, (8 + 8) * 16 * 16 * 4);
    }

    #[test]
    fn block_count_covers_partial_edges() {
        let layer = BlockedConv {
            in_channels: 1,
            out_channels: 1,
            h: 31,
            w: 98,
            k: 5,
            block: 16,
        };
        // ceil(31/16)=2, ceil(98/16)=7.
        assert_eq!(layer.blocks_per_map(), 14);
    }
}

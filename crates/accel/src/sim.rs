//! The trace-driven simulator core.

use reuse_core::{ExecutionTrace, LayerTrace, TraceKind};

use crate::{AcceleratorConfig, EnergyBreakdown, EnergyModel, SimReport};

/// One workload prepared for simulation.
#[derive(Debug, Clone, Copy)]
pub struct SimInput<'a> {
    /// Workload name (used in reports).
    pub name: &'a str,
    /// Per-execution activity traces from the reuse engine.
    pub traces: &'a [ExecutionTrace],
    /// Total model size in bytes (weights + biases at the datapath
    /// precision).
    pub model_bytes: u64,
    /// Executions per input sequence (utterance / video). Weights are loaded
    /// from main memory once per sequence (the accelerator is power-gated
    /// in between, paper Section IV-A), so loading traffic amortizes over
    /// this many executions.
    pub executions_per_sequence: u64,
    /// Whether intermediate layer inputs/outputs spill to main memory
    /// between layers (true for the CNNs, whose feature maps exceed the I/O
    /// buffer and are processed in blocks, paper Section IV-C).
    pub activations_spill: bool,
}

/// Per-execution cost accumulation.
#[derive(Debug, Default, Clone, Copy)]
struct Costs {
    macs: u64,
    quant_ops: u64,
    edram_bytes: u64,
    io_bytes: u64,
    dram_bytes: u64,
    compute_cycles: u64,
    dram_cycles: u64,
    /// Cycles of the critical tile per layer (Section IV-E distribution),
    /// summed over the execution's layers.
    tile_cycles: u64,
}

/// Simulation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Conventional accelerator: every layer executes from scratch.
    Baseline,
    /// Reuse accelerator: incremental layers skip unchanged inputs and pay
    /// the quantize/compare/index overheads.
    Reuse,
}

/// Simulator of the tiled accelerator for a given configuration.
///
/// See the crate-level example.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: AcceleratorConfig,
    energy: EnergyModel,
}

impl Simulator {
    /// Creates a simulator with the default energy model for the
    /// configuration's precision.
    pub fn new(config: AcceleratorConfig) -> Self {
        let energy = EnergyModel::for_precision(config.precision);
        Simulator { config, energy }
    }

    /// Creates a simulator with an explicit energy model.
    pub fn with_energy_model(config: AcceleratorConfig, energy: EnergyModel) -> Self {
        Simulator { config, energy }
    }

    /// The hardware configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// The energy model in use.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }

    /// Simulates the conventional accelerator (no reuse): every layer runs
    /// from scratch every execution.
    pub fn simulate_baseline(&self, input: &SimInput<'_>) -> SimReport {
        self.simulate(input, Mode::Baseline)
    }

    /// Simulates the reuse accelerator driven by the recorded traces.
    pub fn simulate_reuse(&self, input: &SimInput<'_>) -> SimReport {
        self.simulate(input, Mode::Reuse)
    }

    fn simulate(&self, input: &SimInput<'_>, mode: Mode) -> SimReport {
        let bpv = self.config.bytes_per_value();
        let resident_bytes = input.model_bytes.min(self.config.weights_buffer_bytes);
        let resident_fraction = if input.model_bytes == 0 {
            1.0
        } else {
            resident_bytes as f64 / input.model_bytes as f64
        };
        let lanes = self.config.total_multipliers() as u64;
        let dram_bpc = self.config.dram_bytes_per_cycle();

        let mut total = Costs::default();
        for trace in input.traces {
            let mut exec = Costs::default();
            for layer in &trace.layers {
                let c = self.layer_costs(layer, mode, bpv, resident_fraction, input);
                exec.macs += c.macs;
                exec.quant_ops += c.quant_ops;
                exec.edram_bytes += c.edram_bytes;
                exec.io_bytes += c.io_bytes;
                exec.dram_bytes += c.dram_bytes;
                // Layer latency follows the most-loaded tile (Section IV-E).
                let mut tile_trace = layer.clone();
                if mode == Mode::Baseline || layer.mode != TraceKind::Incremental {
                    tile_trace.macs_performed = layer.macs_total;
                }
                exec.tile_cycles += crate::tiles::distribute(&tile_trace, self.config.tiles)
                    .cycles(self.config.multipliers_per_tile as u64);
            }
            // Per-sequence weight (re)load from main memory, amortized.
            let load_bytes =
                (resident_bytes as f64 / input.executions_per_sequence.max(1) as f64) as u64;
            exec.dram_bytes += load_bytes;

            // Cycle model: compute and DRAM streaming overlap (double
            // buffering); the execution takes the longer of the two. Compute
            // time is bounded below by both the lane throughput (including
            // the quantize/compare ops) and the critical-tile latency.
            exec.compute_cycles =
                ((exec.macs + exec.quant_ops).div_ceil(lanes)).max(exec.tile_cycles);
            exec.dram_cycles = (exec.dram_bytes as f64 / dram_bpc).ceil() as u64;
            total.macs += exec.macs;
            total.quant_ops += exec.quant_ops;
            total.edram_bytes += exec.edram_bytes;
            total.io_bytes += exec.io_bytes;
            total.dram_bytes += exec.dram_bytes;
            total.compute_cycles += exec.compute_cycles.max(exec.dram_cycles);
        }

        let cycles = total.compute_cycles;
        let seconds = cycles as f64 / self.config.frequency_hz;
        let e = &self.energy;
        let s = &e.static_w;
        let energy = EnergyBreakdown {
            weights_buffer: total.edram_bytes as f64 * e.edram_j_per_byte
                + s.weights_buffer * seconds,
            io_buffer: total.io_bytes as f64 * e.sram_j_per_byte + s.io_buffer * seconds,
            compute_engine: total.macs as f64 * (e.mul_j + e.add_j)
                + total.quant_ops as f64 * (e.quant_j + e.compare_j)
                + s.compute_engine * seconds,
            main_memory: total.dram_bytes as f64 * e.dram_j_per_byte,
            other: 0.02 * (total.macs as f64 * (e.mul_j + e.add_j)) + s.other * seconds,
        };
        SimReport {
            name: input.name.to_string(),
            mode: match mode {
                Mode::Baseline => "baseline",
                Mode::Reuse => "reuse",
            },
            executions: input.traces.len() as u64,
            cycles,
            seconds,
            energy,
            macs: total.macs,
            edram_bytes: total.edram_bytes,
            io_bytes: total.io_bytes,
            dram_bytes: total.dram_bytes,
        }
    }

    fn layer_costs(
        &self,
        layer: &LayerTrace,
        mode: Mode,
        bpv: u64,
        resident_fraction: f64,
        input: &SimInput<'_>,
    ) -> Costs {
        let mut c = Costs::default();
        let incremental = mode == Mode::Reuse && layer.mode == TraceKind::Incremental;
        c.macs = if incremental {
            layer.macs_performed
        } else {
            layer.macs_total
        };
        // Weight traffic. The data master fetches one weight per MAC from the
        // on-chip weights buffer (weights are reused across output positions,
        // so even streamed weights are staged there first).
        c.edram_bytes = c.macs * bpv;
        // The share of the model that does not fit on-chip streams from main
        // memory once per execution. An incremental FC layer only needs the
        // weight rows of its changed inputs (each input owns its rows); conv
        // and recurrent weights are shared across positions/timesteps, so a
        // sparse change pattern still touches essentially all of them.
        let non_resident = (layer.n_params as f64 * (1.0 - resident_fraction)) as u64 * bpv;
        let fetch_fraction = if incremental && layer.kind == reuse_nn::LayerKind::Fc {
            layer.n_changed as f64 / layer.n_inputs.max(1) as f64
        } else {
            1.0
        };
        c.dram_bytes = (non_resident as f64 * fetch_fraction) as u64;
        if layer.kind == reuse_nn::LayerKind::Recurrent {
            // Recurrent layers execute back-to-back over the whole sequence
            // before the next layer starts (paper Section IV-D), so their
            // streamed weights arrive once per sequence, not per timestep.
            c.dram_bytes =
                (c.dram_bytes as f64 / input.executions_per_sequence.max(1) as f64) as u64;
        }

        // I/O buffer traffic: the input-stationary dataflow reads each
        // input once (even skipped ones are read to be compared) and
        // read-modify-writes every affected output partial sum (paper
        // Figs. 7-8).
        c.io_bytes = layer.n_inputs * bpv + 2 * c.macs * bpv + layer.n_outputs * bpv;

        if mode == Mode::Reuse && layer.mode != TraceKind::ScratchFp32 {
            // Quantize + compare every input; read its stored index and
            // write back the changed ones (1 byte each).
            c.quant_ops = layer.n_inputs;
            c.io_bytes += layer.n_inputs + layer.n_changed;
        }

        if input.activations_spill {
            // CNN feature maps move between main memory and the I/O buffer
            // in blocks: inputs in, outputs out (paper Fig. 8); with reuse
            // the indices travel too.
            c.dram_bytes += (layer.n_inputs + layer.n_outputs) * bpv;
            if mode == Mode::Reuse && layer.mode != TraceKind::ScratchFp32 {
                c.dram_bytes += layer.n_inputs + layer.n_changed;
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reuse_nn::LayerKind;

    fn layer(
        mode: TraceKind,
        n_in: u64,
        n_out: u64,
        macs_total: u64,
        macs_perf: u64,
    ) -> LayerTrace {
        LayerTrace {
            name: "fc1".into(),
            kind: LayerKind::Fc,
            mode,
            n_inputs: n_in,
            n_changed: n_in / 4,
            n_outputs: n_out,
            n_params: n_in * n_out,
            macs_total,
            macs_performed: macs_perf,
        }
    }

    fn traces(n: usize, mode: TraceKind, perf: u64) -> Vec<ExecutionTrace> {
        (0..n)
            .map(|_| ExecutionTrace {
                layers: vec![layer(mode, 400, 2000, 800_000, perf)],
            })
            .collect()
    }

    fn input<'a>(traces: &'a [ExecutionTrace]) -> SimInput<'a> {
        SimInput {
            name: "t",
            traces,
            model_bytes: 4 << 20,
            executions_per_sequence: 100,
            activations_spill: false,
        }
    }

    #[test]
    fn baseline_ignores_reuse_savings() {
        let t = traces(10, TraceKind::Incremental, 200_000);
        let sim = Simulator::new(AcceleratorConfig::paper());
        let b = sim.simulate_baseline(&input(&t));
        // Baseline performs macs_total regardless of the trace's savings.
        assert_eq!(b.macs, 10 * 800_000);
    }

    #[test]
    fn reuse_is_faster_and_cheaper_when_macs_drop() {
        let t = traces(10, TraceKind::Incremental, 200_000);
        let sim = Simulator::new(AcceleratorConfig::paper());
        let inp = input(&t);
        let b = sim.simulate_baseline(&inp);
        let r = sim.simulate_reuse(&inp);
        assert_eq!(r.macs, 10 * 200_000);
        assert!(r.seconds < b.seconds);
        assert!(r.energy_j() < b.energy_j());
        let speedup = r.speedup_over(&b);
        assert!(speedup > 2.0 && speedup < 4.5, "speedup {speedup}");
    }

    #[test]
    fn full_change_reuse_pays_overheads() {
        // If nothing is reused, the reuse accelerator is slightly worse
        // (quantization + index traffic) — the paper's overheads argument.
        let t = traces(10, TraceKind::Incremental, 800_000);
        let sim = Simulator::new(AcceleratorConfig::paper());
        let inp = input(&t);
        let b = sim.simulate_baseline(&inp);
        let r = sim.simulate_reuse(&inp);
        assert!(r.energy_j() >= b.energy_j());
        let penalty = r.energy_j() / b.energy_j();
        assert!(penalty < 1.05, "overhead should be small, got {penalty}");
    }

    #[test]
    fn streaming_weights_go_to_dram() {
        let t = traces(4, TraceKind::Incremental, 200_000);
        let sim = Simulator::new(AcceleratorConfig::paper());
        // Model twice as large as the weights buffer: the non-resident half
        // streams from main memory once per execution, while per-MAC weight
        // fetches still come from the on-chip staging buffer.
        let inp = SimInput {
            model_bytes: 72 << 20,
            ..input(&t)
        };
        let r = sim.simulate_reuse(&inp);
        assert!(r.dram_bytes > 0);
        let on_chip = sim.simulate_reuse(&input(&t));
        assert!(r.dram_bytes > on_chip.dram_bytes);
        assert_eq!(r.edram_bytes, on_chip.edram_bytes);
        // Reuse streams fewer FC weight rows than the baseline (only the
        // rows of changed inputs).
        let base = sim.simulate_baseline(&inp);
        assert!(r.dram_bytes < base.dram_bytes);
    }

    #[test]
    fn activation_spill_adds_dram_traffic() {
        let t = traces(4, TraceKind::Incremental, 200_000);
        let sim = Simulator::new(AcceleratorConfig::paper());
        let spill = SimInput {
            activations_spill: true,
            ..input(&t)
        };
        let r_spill = sim.simulate_reuse(&spill);
        let r_res = sim.simulate_reuse(&input(&t));
        assert!(r_spill.dram_bytes > r_res.dram_bytes);
    }

    #[test]
    fn scratch_fp32_layers_have_no_quant_overhead() {
        let t = traces(2, TraceKind::ScratchFp32, 800_000);
        let sim = Simulator::new(AcceleratorConfig::paper());
        let inp = input(&t);
        let b = sim.simulate_baseline(&inp);
        let r = sim.simulate_reuse(&inp);
        // With all layers fp32-from-scratch the two modes cost the same.
        assert_eq!(b.macs, r.macs);
        assert_eq!(b.io_bytes, r.io_bytes);
        assert!((b.energy_j() - r.energy_j()).abs() / b.energy_j() < 1e-9);
    }

    #[test]
    fn energy_breakdown_dominated_by_weight_memory() {
        // Paper Fig. 11: the eDRAM weights buffer dominates energy.
        let t = traces(20, TraceKind::Incremental, 800_000);
        let sim = Simulator::new(AcceleratorConfig::paper());
        let b = sim.simulate_baseline(&input(&t));
        let frac = b.energy.fraction(crate::Component::WeightsBuffer);
        assert!(frac > 0.4, "eDRAM fraction {frac}");
        assert!(frac > b.energy.fraction(crate::Component::ComputeEngine));
        assert!(frac > b.energy.fraction(crate::Component::IoBuffer));
    }

    #[test]
    fn fixed8_uses_quarter_weight_traffic() {
        let t = traces(4, TraceKind::Incremental, 200_000);
        let f32_sim = Simulator::new(AcceleratorConfig::paper());
        let q8_sim = Simulator::new(AcceleratorConfig::paper_fixed8());
        let b32 = f32_sim.simulate_baseline(&input(&t));
        let b8 = q8_sim.simulate_baseline(&input(&t));
        assert_eq!(b8.edram_bytes * 4, b32.edram_bytes);
        assert!(b8.energy_j() < b32.energy_j());
    }

    #[test]
    fn empty_traces_cost_only_nothing() {
        let sim = Simulator::new(AcceleratorConfig::paper());
        let t: Vec<ExecutionTrace> = Vec::new();
        let r = sim.simulate_reuse(&input(&t));
        assert_eq!(r.cycles, 0);
        assert_eq!(r.energy_j(), 0.0);
    }
}

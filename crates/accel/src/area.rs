//! Area model (paper Section VI: 52 mm² baseline, 53 mm² with reuse).
//!
//! Component densities are calibrated to the 32 nm figures the paper
//! reports; the interesting output is the *overhead ratio* of the reuse
//! extension, which the paper gives as "less than 1%".

use crate::AcceleratorConfig;

/// Area in mm² of eDRAM per MiB at 32 nm (dense, multi-banked).
const EDRAM_MM2_PER_MIB: f64 = 1.11;
/// Area in mm² of SRAM per KiB at 32 nm.
const SRAM_MM2_PER_KIB: f64 = 0.0021;
/// Area in mm² of one FP32 multiplier + adder lane.
const FPU_LANE_MM2: f64 = 0.055;
/// Fixed area of control, data master and routers, mm².
const CONTROL_MM2: f64 = 2.0;

/// Area estimate of one accelerator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaReport {
    /// eDRAM weights buffer, mm².
    pub edram_mm2: f64,
    /// SRAM I/O buffer, mm².
    pub sram_mm2: f64,
    /// Compute engine, mm².
    pub ce_mm2: f64,
    /// Control and interconnect, mm².
    pub control_mm2: f64,
}

impl AreaReport {
    /// Total die area in mm².
    pub fn total(&self) -> f64 {
        self.edram_mm2 + self.sram_mm2 + self.ce_mm2 + self.control_mm2
    }
}

/// Area of the baseline accelerator (Table II, without the reuse extension).
pub fn baseline_area(config: &AcceleratorConfig) -> AreaReport {
    area_with_io(config, config.io_buffer_baseline_bytes)
}

/// Area with the reuse extension: a larger I/O buffer (index area) and a
/// slightly larger control unit (centroid table + comparison control).
pub fn reuse_area(config: &AcceleratorConfig) -> AreaReport {
    let mut a = area_with_io(config, config.io_buffer_reuse_bytes);
    a.control_mm2 += 0.1; // centroid table + index compare control
    a
}

fn area_with_io(config: &AcceleratorConfig, io_bytes: u64) -> AreaReport {
    AreaReport {
        edram_mm2: config.weights_buffer_bytes as f64 / (1024.0 * 1024.0) * EDRAM_MM2_PER_MIB,
        sram_mm2: io_bytes as f64 / 1024.0 * SRAM_MM2_PER_KIB,
        ce_mm2: config.total_multipliers() as f64 * FPU_LANE_MM2,
        control_mm2: CONTROL_MM2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_area_is_about_52mm2() {
        let a = baseline_area(&AcceleratorConfig::paper());
        assert!((a.total() - 52.0).abs() < 2.0, "total {}", a.total());
    }

    #[test]
    fn reuse_overhead_below_one_percent() {
        let c = AcceleratorConfig::paper();
        let b = baseline_area(&c).total();
        let r = reuse_area(&c).total();
        assert!(r > b);
        let overhead = (r - b) / b;
        assert!(overhead < 0.01, "overhead {overhead}");
    }

    #[test]
    fn edram_dominates_die() {
        let a = baseline_area(&AcceleratorConfig::paper());
        assert!(a.edram_mm2 > a.total() / 2.0);
    }
}

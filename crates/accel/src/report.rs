//! Simulation reports.

use crate::EnergyBreakdown;

/// The result of simulating one workload on the accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Workload name.
    pub name: String,
    /// `"baseline"` or `"reuse"`.
    pub mode: &'static str,
    /// Executions simulated.
    pub executions: u64,
    /// Total clock cycles.
    pub cycles: u64,
    /// Wall-clock seconds at the configured frequency.
    pub seconds: f64,
    /// Energy attributed per component (includes static energy).
    pub energy: EnergyBreakdown,
    /// MACs performed.
    pub macs: u64,
    /// Bytes fetched from the eDRAM weights buffer.
    pub edram_bytes: u64,
    /// Bytes accessed in the I/O buffer.
    pub io_bytes: u64,
    /// Bytes transferred to/from main memory.
    pub dram_bytes: u64,
}

impl SimReport {
    /// Total energy in joules.
    pub fn energy_j(&self) -> f64 {
        self.energy.total()
    }

    /// Speedup of this report relative to another (other.seconds / self.seconds).
    pub fn speedup_over(&self, other: &SimReport) -> f64 {
        other.seconds / self.seconds
    }

    /// This report's energy normalized to another's (self / other).
    pub fn normalized_energy_to(&self, other: &SimReport) -> f64 {
        self.energy_j() / other.energy_j()
    }

    /// Energy-delay product in joule-seconds.
    pub fn energy_delay(&self) -> f64 {
        self.energy_j() * self.seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(seconds: f64, ce: f64) -> SimReport {
        SimReport {
            name: "x".into(),
            mode: "baseline",
            executions: 1,
            cycles: 100,
            seconds,
            energy: EnergyBreakdown {
                compute_engine: ce,
                ..Default::default()
            },
            macs: 0,
            edram_bytes: 0,
            io_bytes: 0,
            dram_bytes: 0,
        }
    }

    #[test]
    fn ratios() {
        let base = report(2.0, 4.0);
        let fast = report(0.5, 1.0);
        assert!((fast.speedup_over(&base) - 4.0).abs() < 1e-12);
        assert!((fast.normalized_energy_to(&base) - 0.25).abs() < 1e-12);
        assert!((base.energy_delay() - 8.0).abs() < 1e-12);
    }
}

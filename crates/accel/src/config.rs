//! Accelerator configuration (paper Table II).

/// Arithmetic precision of the datapath.
///
/// The main evaluation uses 32-bit floating point; Section VI-A studies an
/// 8-bit fixed-point variant of the same accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// 32-bit IEEE-754 floating point.
    #[default]
    Fp32,
    /// 8-bit fixed point (reduced-precision accelerator, Section VI-A).
    Fixed8,
}

impl Precision {
    /// Bytes used to store one value (weight, input or output).
    pub fn bytes_per_value(&self) -> u64 {
        match self {
            Precision::Fp32 => 4,
            Precision::Fixed8 => 1,
        }
    }
}

/// Hardware parameters of the accelerator (paper Table II).
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorConfig {
    /// Number of tiles; work is distributed across tiles (Section IV-E).
    pub tiles: usize,
    /// Multipliers per tile.
    pub multipliers_per_tile: usize,
    /// Adders per tile.
    pub adders_per_tile: usize,
    /// Clock frequency in hertz.
    pub frequency_hz: f64,
    /// eDRAM Weights Buffer capacity in bytes (9 MB per tile).
    pub weights_buffer_bytes: u64,
    /// SRAM I/O Buffer capacity in bytes, baseline accelerator.
    pub io_buffer_baseline_bytes: u64,
    /// SRAM I/O Buffer capacity in bytes with the reuse scheme (extra area
    /// for the input indices).
    pub io_buffer_reuse_bytes: u64,
    /// Main-memory (LPDDR4 dual channel) bandwidth in bytes per second.
    pub dram_bandwidth_bytes_per_sec: f64,
    /// Datapath precision.
    pub precision: Precision,
}

impl AcceleratorConfig {
    /// The configuration of paper Table II: 32 nm, 500 MHz, 4 tiles,
    /// 128 + 128 FPUs, 36 MB eDRAM, 1152/1280 KB I/O buffer, LPDDR4-16 GB/s.
    pub fn paper() -> Self {
        AcceleratorConfig {
            tiles: 4,
            multipliers_per_tile: 32,
            adders_per_tile: 32,
            frequency_hz: 500e6,
            weights_buffer_bytes: 36 << 20,
            io_buffer_baseline_bytes: 1152 << 10,
            io_buffer_reuse_bytes: 1280 << 10,
            dram_bandwidth_bytes_per_sec: 16e9,
            precision: Precision::Fp32,
        }
    }

    /// The Section VI-A variant: identical organization, 8-bit fixed point.
    pub fn paper_fixed8() -> Self {
        AcceleratorConfig {
            precision: Precision::Fixed8,
            ..Self::paper()
        }
    }

    /// Total multipliers across tiles (128 in the paper configuration).
    pub fn total_multipliers(&self) -> usize {
        self.tiles * self.multipliers_per_tile
    }

    /// Total adders across tiles.
    pub fn total_adders(&self) -> usize {
        self.tiles * self.adders_per_tile
    }

    /// Bytes per stored value under the configured precision.
    pub fn bytes_per_value(&self) -> u64 {
        self.precision.bytes_per_value()
    }

    /// Main-memory bytes transferable per clock cycle.
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        self.dram_bandwidth_bytes_per_sec / self.frequency_hz
    }
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_matches_table2() {
        let c = AcceleratorConfig::paper();
        assert_eq!(c.tiles, 4);
        assert_eq!(c.total_multipliers(), 128);
        assert_eq!(c.total_adders(), 128);
        assert_eq!(c.frequency_hz, 500e6);
        assert_eq!(c.weights_buffer_bytes, 36 * 1024 * 1024);
        assert_eq!(c.io_buffer_baseline_bytes, 1152 * 1024);
        assert_eq!(c.io_buffer_reuse_bytes, 1280 * 1024);
        assert_eq!(c.bytes_per_value(), 4);
    }

    #[test]
    fn dram_bytes_per_cycle_is_32() {
        let c = AcceleratorConfig::paper();
        assert!((c.dram_bytes_per_cycle() - 32.0).abs() < 1e-9);
    }

    #[test]
    fn fixed8_halves_nothing_but_bytes() {
        let c = AcceleratorConfig::paper_fixed8();
        assert_eq!(c.bytes_per_value(), 1);
        assert_eq!(c.total_multipliers(), 128);
    }
}

//! Analytical simulator of the paper's tiled DNN accelerator (Section IV-V).
//!
//! The hardware modeled here is a DaDianNao-style design: four tiles, each
//! with 32 FP multipliers and 32 FP adders, a 36 MB multi-banked eDRAM
//! Weights Buffer, a two-bank SRAM I/O Buffer, a Data Master streaming
//! operands, and an LPDDR4 main memory (paper Table II). The reuse extension
//! adds two I/O-buffer areas (quantized input indices and buffered layer
//! outputs) plus a centroid table in the Control Unit.
//!
//! The simulator is **trace-driven**: it consumes the per-execution,
//! per-layer activity records produced by `reuse_core::ReuseEngine`
//! ([`reuse_core::ExecutionTrace`]) and converts them into cycles and energy
//! using an analytical cost model:
//!
//! * Compute cycles: performed MACs over the 128 multiply-add lanes.
//! * Memory cycles: bytes streamed from LPDDR4 over the 16 GB/s channel
//!   (weights that do not fit on-chip, spilled CNN activations, indices).
//! * Energy: documented per-byte / per-op constants ([`EnergyModel`]) plus
//!   per-component static power integrated over runtime.
//!
//! Absolute joules are calibrated to the 32 nm low-power ballpark, but the
//! experiments report *relative* numbers (speedup, normalized energy,
//! breakdown shares), which depend only on the ratios — see DESIGN.md.
//!
//! # Example
//!
//! ```
//! use reuse_accel::{AcceleratorConfig, SimInput, Simulator};
//!
//! let sim = Simulator::new(AcceleratorConfig::paper());
//! # let traces: Vec<reuse_core::ExecutionTrace> = Vec::new();
//! let input = SimInput {
//!     name: "kaldi",
//!     traces: &traces,
//!     model_bytes: 18 << 20,
//!     executions_per_sequence: 500,
//!     activations_spill: false,
//! };
//! let baseline = sim.simulate_baseline(&input);
//! let reuse = sim.simulate_reuse(&input);
//! assert!(reuse.seconds <= baseline.seconds);
//! ```

#![warn(missing_docs)]

pub mod area;
pub mod blocking;
mod config;
mod energy;
pub mod events;
pub mod memory;
pub mod noc;
pub mod pipeline;
pub mod platform;
mod report;
mod sim;
pub mod sweep;
pub mod tiles;

pub use config::{AcceleratorConfig, Precision};
pub use energy::{Component, EnergyBreakdown, EnergyModel, COMPONENTS};
pub use platform::ReferencePlatform;
pub use report::SimReport;
pub use sim::{SimInput, Simulator};

//! Discrete-event cycle simulation of the reuse accelerator.
//!
//! The analytical model ([`crate::Simulator`]) converts activity counts to
//! cycles with closed-form expressions. This module simulates the same
//! hardware as interacting units advancing cycle by cycle, capturing the
//! second-order effects the closed forms assume away:
//!
//! * the **front end** issues one input per cycle (read + quantize +
//!   compare, paper Fig. 7), stalling when the back end is busy;
//! * the **back end** (data master + multiplier/adder array) processes one
//!   changed input's fan-out at `lanes` MACs per cycle;
//! * the **DRAM channel** delivers streamed weight/activation bytes at the
//!   configured bandwidth, with layer-granular double buffering: the
//!   transfer for layer `l+1` overlaps the computation of layer `l`, and a
//!   layer cannot start before its own transfer completes.
//!
//! The event simulator and the analytical model must agree within the
//! pipeline fill/drain and rounding slack — asserted by the tests here and
//! cross-checked against real traces in `crates/bench/tests/`.

use reuse_core::{ExecutionTrace, TraceKind};

use crate::AcceleratorConfig;

/// Per-layer work description fed to the event simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerWork {
    /// Inputs entering the front end.
    pub n_inputs: u64,
    /// Inputs whose index changed (occupy the back end).
    pub n_changed: u64,
    /// Back-end MACs per changed input (fan-out).
    pub fanout: u64,
    /// Bytes this layer must receive from main memory before it can start
    /// (streamed weights, staged activation blocks, indices).
    pub dram_bytes: u64,
}

/// Cycle-by-cycle outcome of one execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventReport {
    /// Total cycles for the execution.
    pub cycles: u64,
    /// Cycles the compute pipeline spent stalled waiting for DRAM.
    pub dram_stall_cycles: u64,
}

/// Simulates one execution: layers run in order; each layer's DRAM transfer
/// is overlapped with the previous layer's compute (double buffering).
pub fn simulate_execution(layers: &[LayerWork], config: &AcceleratorConfig) -> EventReport {
    let lanes = config.total_multipliers() as u64;
    let dram_bpc = config.dram_bytes_per_cycle();

    let mut now: u64 = 0;
    let mut dram_free: u64 = 0; // cycle at which the DRAM channel is free
    let mut ready_at: u64 = 0; // cycle at which the *current* layer's data is ready
    let mut stalls: u64 = 0;

    // Kick off the first layer's transfer at cycle 0.
    if let Some(first) = layers.first() {
        let dur = (first.dram_bytes as f64 / dram_bpc).ceil() as u64;
        ready_at = dur;
        dram_free = dur;
    }
    for (i, layer) in layers.iter().enumerate() {
        // Wait for this layer's operands.
        if ready_at > now {
            stalls += ready_at - now;
            now = ready_at;
        }
        // Prefetch the next layer while this one computes.
        if let Some(next) = layers.get(i + 1) {
            let start = dram_free.max(now);
            let dur = (next.dram_bytes as f64 / dram_bpc).ceil() as u64;
            dram_free = start + dur;
            ready_at = dram_free;
        }
        // Cycle-accurate front/back end interplay.
        now += layer_compute_cycles(layer, lanes);
    }
    EventReport {
        cycles: now,
        dram_stall_cycles: stalls,
    }
}

/// Front end issues one input per cycle; changed inputs occupy the back end
/// for `ceil(fanout/lanes)` cycles, back-pressuring the front end. Identical
/// to [`crate::pipeline::layer_cycles`] but derived by stepping a two-stage
/// occupancy machine, which is what catches bookkeeping bugs in either.
fn layer_compute_cycles(layer: &LayerWork, lanes: u64) -> u64 {
    let back_end_cost = layer.fanout.div_ceil(lanes.max(1)).max(1);
    let mut cycle: u64 = 0;
    let mut back_end_free: u64 = 0;
    let mut issued_changed = 0u64;
    let mut issued_total = 0u64;
    while issued_total < layer.n_inputs {
        // The front end issues one input this cycle if the back end can
        // accept a changed input when this one turns out changed.
        let remaining_changed = layer.n_changed - issued_changed;
        let must_use_back_end =
            remaining_changed > 0 && remaining_changed >= layer.n_inputs - issued_total;
        let is_changed = must_use_back_end || {
            // Issue changed inputs as early as possible (worst case for
            // stalls; real order depends on data).
            remaining_changed > 0
        };
        if is_changed {
            if back_end_free > cycle {
                // Stall until the back end frees up.
                cycle = back_end_free;
            }
            back_end_free = cycle + back_end_cost;
            issued_changed += 1;
        }
        issued_total += 1;
        cycle += 1;
    }
    // Drain the back end and the pipeline registers.
    back_end_free.max(cycle) + crate::pipeline::STAGES - 1
}

/// Converts an execution trace into event-simulator work, mirroring the
/// analytical model's cost attribution.
pub fn work_from_trace(
    trace: &ExecutionTrace,
    config: &AcceleratorConfig,
    model_bytes: u64,
    reuse_mode: bool,
    activations_spill: bool,
) -> Vec<LayerWork> {
    let bpv = config.bytes_per_value();
    let resident_fraction = if model_bytes == 0 {
        1.0
    } else {
        (model_bytes.min(config.weights_buffer_bytes)) as f64 / model_bytes as f64
    };
    trace
        .layers
        .iter()
        .map(|l| {
            let incremental = reuse_mode && l.mode == TraceKind::Incremental;
            let (n_changed, macs) = if incremental {
                (l.n_changed, l.macs_performed)
            } else {
                (l.n_inputs, l.macs_total)
            };
            let fanout = if n_changed == 0 {
                1
            } else {
                (macs / n_changed.max(1)).max(1)
            };
            let mut dram = (l.n_params as f64 * (1.0 - resident_fraction)) as u64 * bpv;
            if incremental && l.kind == reuse_nn::LayerKind::Fc {
                dram = (dram as f64 * (l.n_changed as f64 / l.n_inputs.max(1) as f64)) as u64;
            }
            if activations_spill {
                dram += (l.n_inputs + l.n_outputs) * bpv;
            }
            LayerWork {
                n_inputs: l.n_inputs,
                n_changed,
                fanout,
                dram_bytes: dram,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> AcceleratorConfig {
        AcceleratorConfig::paper()
    }

    #[test]
    fn bounded_by_pipeline_closed_form() {
        // The closed-form pipeline model charges every changed input its
        // full back-end occupancy; the stepped machine overlaps the final
        // drain with trailing unchanged issues, so it is at most one
        // back-end burst tighter — never looser.
        for (n_inputs, n_changed, fanout) in [
            (400u64, 100u64, 2000u64),
            (400, 0, 2000),
            (400, 400, 2000),
            (1000, 1000, 64),
        ] {
            let work = LayerWork {
                n_inputs,
                n_changed,
                fanout,
                dram_bytes: 0,
            };
            let stepped = layer_compute_cycles(&work, 128);
            let closed = crate::pipeline::layer_cycles(
                &crate::pipeline::PipelineLayer {
                    n_inputs,
                    n_changed,
                    fanout,
                    quantize: true,
                },
                128,
            );
            assert!(
                stepped <= closed,
                "({n_inputs},{n_changed},{fanout}): {stepped} > {closed}"
            );
            let slack = fanout.div_ceil(128) + crate::pipeline::STAGES;
            assert!(
                closed - stepped <= slack,
                "({n_inputs},{n_changed},{fanout}): gap {} > slack {slack}",
                closed - stepped
            );
        }
    }

    #[test]
    fn dram_overlaps_compute_with_double_buffering() {
        // Two layers: the second's transfer should hide behind the first's
        // compute when compute is long enough.
        let long_compute = LayerWork {
            n_inputs: 10_000,
            n_changed: 10_000,
            fanout: 2000,
            dram_bytes: 0,
        };
        let after = LayerWork {
            n_inputs: 10,
            n_changed: 10,
            fanout: 128,
            dram_bytes: 32_000,
        };
        let with_transfer = simulate_execution(&[long_compute, after], &config());
        let without = simulate_execution(
            &[
                long_compute,
                LayerWork {
                    dram_bytes: 0,
                    ..after
                },
            ],
            &config(),
        );
        // 32 KB at 32 B/cycle = 1000 cycles, fully hidden behind the first
        // layer's ~160k compute cycles.
        assert_eq!(with_transfer.cycles, without.cycles);
        assert_eq!(with_transfer.dram_stall_cycles, 0);
    }

    #[test]
    fn dram_bound_layer_stalls_the_pipeline() {
        // A tiny compute with a huge transfer must expose the transfer.
        let layer = LayerWork {
            n_inputs: 10,
            n_changed: 10,
            fanout: 64,
            dram_bytes: 3_200_000,
        };
        let report = simulate_execution(&[layer], &config());
        // 3.2 MB at 32 B/cycle = 100k cycles dominates.
        assert!(report.cycles >= 100_000);
        assert!(report.dram_stall_cycles >= 100_000 - 20);
    }

    #[test]
    fn zero_similarity_equals_scratch_cost_plus_compare() {
        let scratch = LayerWork {
            n_inputs: 400,
            n_changed: 400,
            fanout: 2000,
            dram_bytes: 0,
        };
        let reused = LayerWork {
            n_inputs: 400,
            n_changed: 0,
            fanout: 2000,
            dram_bytes: 0,
        };
        let s = simulate_execution(&[scratch], &config());
        let r = simulate_execution(&[reused], &config());
        // Fully-reused layer: one cycle per input.
        assert!(r.cycles <= 400 + crate::pipeline::STAGES);
        // From-scratch: fan-out bound.
        assert!(s.cycles >= 400 * (2000u64.div_ceil(128)));
    }

    #[test]
    fn empty_execution_costs_nothing() {
        let report = simulate_execution(&[], &config());
        assert_eq!(report.cycles, 0);
        assert_eq!(report.dram_stall_cycles, 0);
    }

    #[test]
    fn work_from_trace_scales_with_mode() {
        use reuse_core::{LayerTrace, TraceKind};
        use reuse_nn::LayerKind;
        let trace = ExecutionTrace {
            layers: vec![LayerTrace {
                name: "fc1".into(),
                kind: LayerKind::Fc,
                mode: TraceKind::Incremental,
                n_inputs: 400,
                n_changed: 100,
                n_outputs: 2000,
                n_params: 800_000,
                macs_total: 800_000,
                macs_performed: 200_000,
            }],
        };
        let reuse = work_from_trace(&trace, &config(), 72 << 20, true, false);
        let base = work_from_trace(&trace, &config(), 72 << 20, false, false);
        assert_eq!(reuse[0].n_changed, 100);
        assert_eq!(base[0].n_changed, 400);
        // Reuse streams only the changed inputs' weight rows.
        assert!(reuse[0].dram_bytes < base[0].dram_bytes);
        assert_eq!(reuse[0].dram_bytes, base[0].dram_bytes / 4);
    }
}

//! Design-space sweep utilities.
//!
//! The experiments and examples repeatedly simulate the same traces under
//! families of accelerator configurations (tile counts, precisions,
//! frequencies). [`ConfigSweep`] names each point and runs baseline + reuse
//! in one call, returning a grid the caller can print or post-process.

use reuse_core::ExecutionTrace;
use reuse_tensor::{parallel_map, ParallelConfig};

use crate::{AcceleratorConfig, Precision, SimInput, SimReport, Simulator};

/// One named configuration point in a sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Human-readable label (e.g. `"4 tiles, fp32"`).
    pub label: String,
    /// The configuration simulated.
    pub config: AcceleratorConfig,
}

/// Baseline and reuse results at one sweep point.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The point's label.
    pub label: String,
    /// Baseline (no-reuse) simulation.
    pub baseline: SimReport,
    /// Reuse simulation.
    pub reuse: SimReport,
    /// Fraction of MACs the workload's traces avoided (`1 − performed /
    /// total`). A property of the input, identical at every point of one
    /// sweep; recorded on each result so reports carry the reuse-rate
    /// provenance alongside the hardware numbers.
    pub reuse_rate: f64,
}

/// MAC-level reuse rate of a set of execution traces.
fn trace_reuse_rate(traces: &[ExecutionTrace]) -> f64 {
    let (total, performed) = traces.iter().fold((0u64, 0u64), |(t, p), tr| {
        (t + tr.macs_total(), p + tr.macs_performed())
    });
    if total == 0 {
        0.0
    } else {
        1.0 - performed as f64 / total as f64
    }
}

impl SweepResult {
    /// Speedup of reuse over baseline at this point.
    pub fn speedup(&self) -> f64 {
        self.reuse.speedup_over(&self.baseline)
    }

    /// Energy savings fraction at this point.
    pub fn energy_savings(&self) -> f64 {
        1.0 - self.reuse.normalized_energy_to(&self.baseline)
    }
}

/// A set of configuration points to simulate against one workload.
#[derive(Debug, Clone, Default)]
pub struct ConfigSweep {
    points: Vec<SweepPoint>,
}

impl ConfigSweep {
    /// An empty sweep.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an arbitrary named configuration.
    pub fn point(mut self, label: &str, config: AcceleratorConfig) -> Self {
        self.points.push(SweepPoint {
            label: label.to_string(),
            config,
        });
        self
    }

    /// Adds one point per tile count, from the paper configuration.
    pub fn tiles(mut self, counts: &[usize]) -> Self {
        for &tiles in counts {
            self.points.push(SweepPoint {
                label: format!("{tiles} tiles"),
                config: AcceleratorConfig {
                    tiles,
                    ..AcceleratorConfig::paper()
                },
            });
        }
        self
    }

    /// Adds the two precision variants of the paper configuration.
    pub fn precisions(mut self) -> Self {
        for (label, precision) in [("fp32", Precision::Fp32), ("fixed8", Precision::Fixed8)] {
            self.points.push(SweepPoint {
                label: label.to_string(),
                config: AcceleratorConfig {
                    precision,
                    ..AcceleratorConfig::paper()
                },
            });
        }
        self
    }

    /// Adds one point per core frequency (hertz), from the paper
    /// configuration.
    pub fn frequencies(mut self, hertz: &[f64]) -> Self {
        for &frequency_hz in hertz {
            self.points.push(SweepPoint {
                label: format!("{:.0} MHz", frequency_hz / 1e6),
                config: AcceleratorConfig {
                    frequency_hz,
                    ..AcceleratorConfig::paper()
                },
            });
        }
        self
    }

    /// The configured points.
    pub fn points(&self) -> &[SweepPoint] {
        &self.points
    }

    /// Simulates every point against the given workload input.
    pub fn run(&self, input: &SimInput<'_>) -> Vec<SweepResult> {
        self.run_parallel(&ParallelConfig::serial(), input)
    }

    /// Like [`ConfigSweep::run`], but fans the points out across worker
    /// threads. Each point's simulation is independent, so the results are
    /// identical to [`ConfigSweep::run`] (in input order) for any thread
    /// count. The worker count is clamped to the host's hardware threads by
    /// `ParallelConfig` (adaptive dispatch), so oversized sweeps never
    /// oversubscribe a small machine.
    pub fn run_parallel(&self, config: &ParallelConfig, input: &SimInput<'_>) -> Vec<SweepResult> {
        let reuse_rate = trace_reuse_rate(input.traces);
        parallel_map(config, &self.points, |p| {
            let sim = Simulator::new(p.config.clone());
            SweepResult {
                label: p.label.clone(),
                baseline: sim.simulate_baseline(input),
                reuse: sim.simulate_reuse(input),
                reuse_rate,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reuse_core::{ExecutionTrace, LayerTrace, TraceKind};
    use reuse_nn::LayerKind;

    fn traces() -> Vec<ExecutionTrace> {
        (0..4)
            .map(|_| ExecutionTrace {
                layers: vec![LayerTrace {
                    name: "fc1".into(),
                    kind: LayerKind::Fc,
                    mode: TraceKind::Incremental,
                    n_inputs: 400,
                    n_changed: 100,
                    n_outputs: 2000,
                    n_params: 800_000,
                    macs_total: 800_000,
                    macs_performed: 200_000,
                }],
            })
            .collect()
    }

    fn input(traces: &[ExecutionTrace]) -> SimInput<'_> {
        SimInput {
            name: "sweep",
            traces,
            model_bytes: 4 << 20,
            executions_per_sequence: 100,
            activations_spill: false,
        }
    }

    #[test]
    fn builder_accumulates_points() {
        let sweep = ConfigSweep::new()
            .tiles(&[1, 4])
            .precisions()
            .frequencies(&[500e6]);
        assert_eq!(sweep.points().len(), 5);
        assert_eq!(sweep.points()[0].label, "1 tiles");
        assert_eq!(sweep.points()[2].label, "fp32");
        assert_eq!(sweep.points()[4].label, "500 MHz");
    }

    #[test]
    fn run_produces_one_result_per_point() {
        let t = traces();
        let results = ConfigSweep::new().tiles(&[1, 2, 4]).run(&input(&t));
        assert_eq!(results.len(), 3);
        for r in &results {
            assert!(r.speedup() > 1.0, "{}: {}", r.label, r.speedup());
            assert!(r.energy_savings() > 0.0);
            // 200k of 800k MACs performed on every trace -> 75% reuse.
            assert!((r.reuse_rate - 0.75).abs() < 1e-12, "{}", r.reuse_rate);
        }
        // More tiles: faster baseline.
        assert!(results[2].baseline.seconds < results[0].baseline.seconds);
    }

    #[test]
    fn run_parallel_matches_run() {
        let t = traces();
        let sweep = ConfigSweep::new()
            .tiles(&[1, 2, 4])
            .precisions()
            .frequencies(&[250e6]);
        let serial = sweep.run(&input(&t));
        for threads in [1, 2, 3, 7] {
            // Oversubscribed so the fan-out is exercised even on a
            // single-hardware-thread CI host.
            let cfg = ParallelConfig::with_threads(threads)
                .min_work_per_thread(1)
                .oversubscribed();
            let par = sweep.run_parallel(&cfg, &input(&t));
            assert_eq!(par.len(), serial.len());
            for (a, b) in par.iter().zip(serial.iter()) {
                assert_eq!(a.label, b.label);
                assert_eq!(a.baseline.seconds.to_bits(), b.baseline.seconds.to_bits());
                assert_eq!(a.reuse.seconds.to_bits(), b.reuse.seconds.to_bits());
            }
        }
    }

    #[test]
    fn frequency_scales_time_not_energy_ratio() {
        let t = traces();
        let results = ConfigSweep::new()
            .frequencies(&[250e6, 500e6])
            .run(&input(&t));
        assert!(results[0].baseline.seconds > results[1].baseline.seconds);
        // The reuse/baseline energy ratio barely moves with frequency (both
        // scale the same static energy).
        let r0 = 1.0 - results[0].energy_savings();
        let r1 = 1.0 - results[1].energy_savings();
        assert!((r0 - r1).abs() < 0.1, "{r0} vs {r1}");
    }
}

//! Storage accounting: I/O buffer sizing and main-memory footprints
//! (paper Table III).
//!
//! The I/O buffer stages layer inputs and outputs. For MLPs/RNNs the whole
//! working set of one layer fits on-chip; for CNNs the feature maps are
//! processed in blocks (paper Section IV-C) with one block per input and
//! output feature map resident. The reuse scheme adds the quantized-index
//! area (one byte per staged input) and, for MLPs/RNNs, the buffered layer
//! outputs.

use reuse_nn::{Layer, LayerKind, Network};

/// The block side used for CNN feature-map staging (paper: 16×16×1).
pub const CNN_BLOCK_ELEMS: usize = 16 * 16;

/// Storage requirements of one network on the accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageReport {
    /// I/O-buffer bytes required by the baseline accelerator.
    pub io_baseline_bytes: u64,
    /// I/O-buffer bytes required with the reuse scheme.
    pub io_reuse_bytes: u64,
    /// Main-memory bytes used by the baseline (model + spilled activations).
    pub main_baseline_bytes: u64,
    /// Main-memory bytes used with the reuse scheme (adds spilled indices
    /// and buffered outputs for CNNs).
    pub main_reuse_bytes: u64,
}

/// Whether a network's activations are managed through main memory with
/// blocked on-chip staging. The paper treats both CNNs this way (Section
/// IV-C / Table III): layer inputs/outputs live in main memory and move to
/// the I/O buffer one block per feature map.
pub fn activations_spill(net: &Network) -> bool {
    net.layers()
        .iter()
        .any(|(_, l)| matches!(l, Layer::Conv2d(_) | Layer::Conv3d(_)))
}

fn largest_layer_io_bytes(net: &Network) -> u64 {
    net.layers()
        .iter()
        .zip(net.layer_input_shapes().iter())
        .map(|((_, l), s)| {
            let out = l.output_shape(s).expect("validated at build").volume();
            ((s.volume() + out) * 4) as u64
        })
        .max()
        .unwrap_or(0)
}

/// Computes the Table III storage accounting for a network.
///
/// `enabled` reports whether the named layer participates in the reuse
/// scheme (usually `ReuseConfig::setting_for(name).enabled`).
pub fn storage_report(net: &Network, enabled: impl Fn(&str) -> bool) -> StorageReport {
    let spill = activations_spill(net);
    let model = net.model_bytes();

    let mut io_baseline: u64 = 0;
    let mut io_reuse_extra: u64 = 0;
    let mut spilled_activations: u64 = 0;
    let mut spilled_reuse_extra: u64 = 0;

    if spill {
        // CNN: one 16x16 block per input feature map and per output feature
        // map of the largest layer stays on-chip (paper Fig. 8); indices for
        // the staged input blocks are the reuse extra.
        for ((name, layer), in_shape) in net.layers().iter().zip(net.layer_input_shapes().iter()) {
            let (in_c, out_c) = match layer {
                Layer::Conv2d(c) => (c.spec().in_channels, c.spec().out_channels),
                Layer::Conv3d(c) => (c.spec().in_channels, c.spec().out_channels),
                _ => continue,
            };
            let staged = ((in_c + out_c) * CNN_BLOCK_ELEMS * 4) as u64;
            io_baseline = io_baseline.max(staged);
            if enabled(name) {
                io_reuse_extra = io_reuse_extra.max((in_c * CNN_BLOCK_ELEMS) as u64);
            }
            let out_elems = layer.output_shape(in_shape).expect("validated").volume() as u64;
            let in_elems = in_shape.volume() as u64;
            spilled_activations = spilled_activations.max((in_elems + out_elems) * 4);
            if enabled(name) {
                // Indices and previous outputs of every reuse layer persist
                // in main memory between executions.
                spilled_reuse_extra += in_elems + out_elems * 4;
            }
        }
        // FC layers at the CNN tail still stage in the I/O buffer.
        for ((name, layer), in_shape) in net.layers().iter().zip(net.layer_input_shapes().iter()) {
            if let Layer::FullyConnected(fc) = layer {
                let staged = ((fc.n_in() + fc.n_out()) * 4) as u64;
                io_baseline = io_baseline.max(staged);
                let _ = in_shape;
                if enabled(name) {
                    spilled_reuse_extra += (fc.n_in() + fc.n_out() * 4) as u64;
                }
            }
        }
    } else {
        // MLP / RNN: double-buffered staging of the largest layer, plus —
        // with reuse — the persistent indices and buffered outputs of every
        // enabled layer (paper Fig. 7).
        io_baseline = 2 * largest_layer_io_bytes(net) / 2; // both banks hold in+out
        for ((name, layer), in_shape) in net.layers().iter().zip(net.layer_input_shapes().iter()) {
            if !layer.has_weights() || !enabled(name) {
                continue;
            }
            let in_elems = in_shape.volume() as u64;
            let out_elems = layer.output_shape(in_shape).expect("validated").volume() as u64;
            match layer.kind() {
                LayerKind::Recurrent => {
                    // Only one recurrent layer is live at a time; indices for
                    // x and h plus the four gates' buffered pre-activations
                    // per direction.
                    if let Layer::BiLstm(l) = layer {
                        let per_dir = (l.n_in() + l.cell_dim() + 4 * 4 * l.cell_dim()) as u64;
                        io_reuse_extra = io_reuse_extra.max(2 * per_dir);
                    }
                }
                _ => {
                    io_reuse_extra += in_elems + out_elems * 4;
                }
            }
        }
    }

    let main_baseline = model + spilled_activations;
    StorageReport {
        io_baseline_bytes: io_baseline,
        io_reuse_bytes: io_baseline + io_reuse_extra,
        main_baseline_bytes: main_baseline,
        main_reuse_bytes: main_baseline + if spill { spilled_reuse_extra } else { 0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reuse_nn::{Activation, NetworkBuilder};
    use reuse_tensor::Shape;

    fn mlp() -> Network {
        NetworkBuilder::new("mlp", 400)
            .fully_connected(2000, Activation::Relu)
            .fully_connected(100, Activation::Identity)
            .build()
            .unwrap()
    }

    #[test]
    fn mlp_does_not_spill() {
        assert!(!activations_spill(&mlp()));
    }

    #[test]
    fn mlp_reuse_adds_indices_and_outputs() {
        let net = mlp();
        let r = storage_report(&net, |_| true);
        // Baseline stages the largest (in+out) pair: fc1 = 400+2000 floats.
        assert_eq!(r.io_baseline_bytes, (400 + 2000) * 4);
        // Reuse adds idx(400)+out(2000*4) + idx(2000)+out(100*4).
        let extra = (400 + 2000 * 4) + (2000 + 100 * 4);
        assert_eq!(r.io_reuse_bytes, r.io_baseline_bytes + extra as u64);
        // No spill: main memory unchanged.
        assert_eq!(r.main_baseline_bytes, r.main_reuse_bytes);
        assert_eq!(r.main_baseline_bytes, net.model_bytes());
    }

    #[test]
    fn disabled_layers_add_nothing() {
        let net = mlp();
        let all = storage_report(&net, |_| true);
        let none = storage_report(&net, |_| false);
        assert_eq!(none.io_baseline_bytes, none.io_reuse_bytes);
        assert!(all.io_reuse_bytes > none.io_reuse_bytes);
    }

    #[test]
    fn big_cnn_spills_and_counts_blocks() {
        // A conv layer with many channels exceeds the staging budget.
        let net = NetworkBuilder::with_input_shape("cnn", Shape::d3(64, 64, 64))
            .conv2d(128, 3, 1, 1, Activation::Relu)
            .pool2d(8)
            .flatten()
            .fully_connected(10, Activation::Identity)
            .build()
            .unwrap();
        assert!(activations_spill(&net));
        let r = storage_report(&net, |name| name.starts_with("conv"));
        // Staged blocks: (64+128) maps x 256 elems x 4B.
        assert_eq!(r.io_baseline_bytes, (64 + 128) * 256 * 4);
        // Index blocks: 64 x 256 x 1B.
        assert_eq!(r.io_reuse_bytes - r.io_baseline_bytes, 64 * 256);
        // Main memory grows by indices + buffered outputs.
        assert!(r.main_reuse_bytes > r.main_baseline_bytes);
    }

    #[test]
    fn rnn_reuse_extra_is_one_layer_deep() {
        let net = NetworkBuilder::new("rnn", 120)
            .bilstm(320)
            .bilstm(320)
            .fully_connected(50, Activation::Identity)
            .build()
            .unwrap();
        let r = storage_report(&net, |n| n.starts_with("bilstm"));
        // Extra is the max over recurrent layers, not the sum: layer 2
        // dominates (in 640).
        let per_dir = (640 + 320 + 16 * 320) as u64;
        assert_eq!(r.io_reuse_bytes - r.io_baseline_bytes, 2 * per_dir);
    }
}

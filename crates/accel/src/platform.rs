//! Analytical models of the reference CPU and GPU (paper Fig. 12).
//!
//! The paper measures Kaldi/Caffe/TensorFlow/EESEN software on an Intel
//! i7-7700K and an NVIDIA GTX 1080. We substitute roofline-with-occupancy
//! models: each platform has a peak FLOP/s, and a per-layer efficiency that
//! saturates with layer size (small layers cannot fill wide SIMD/SIMT
//! machines — this is why the GPU only wins on C3D, the one workload with
//! multi-GMAC layers). Energy is power × time with published package powers.

use reuse_core::ExecutionTrace;

/// A reference software platform for the Fig. 12 comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ReferencePlatform {
    /// Platform name.
    pub name: &'static str,
    /// Peak single-precision FLOP/s.
    pub peak_flops: f64,
    /// Maximum achievable fraction of peak on large DNN layers.
    pub max_efficiency: f64,
    /// Layer MAC count at which efficiency reaches half its maximum (the
    /// occupancy knee; smaller layers run proportionally less efficiently).
    pub half_size_macs: f64,
    /// Fixed per-layer dispatch cost in seconds (kernel launch on the GPU,
    /// function-call/threading overhead on the CPU).
    pub launch_overhead_s: f64,
    /// Average package power while running DNN inference, watts.
    pub power_watts: f64,
}

impl ReferencePlatform {
    /// Intel i7-7700K (Skylake, 4 cores, AVX2 FMA, 4.2 GHz turbo):
    /// peak ≈ 4 cores × 2 FMA ports × 8 lanes × 2 FLOPs × 4.2 GHz.
    pub fn cpu_i7_7700k() -> Self {
        ReferencePlatform {
            name: "i7-7700K",
            peak_flops: 537e9,
            max_efficiency: 0.35,
            half_size_macs: 2e6,
            launch_overhead_s: 1e-6,
            power_watts: 80.0,
        }
    }

    /// NVIDIA GTX 1080 (Pascal, 2560 FPUs at 1.82 GHz ≈ 9.3 TFLOP/s,
    /// >200 W under full DNN load per the paper).
    pub fn gtx_1080() -> Self {
        ReferencePlatform {
            name: "GTX 1080",
            peak_flops: 9.3e12,
            max_efficiency: 0.65,
            half_size_macs: 40e6,
            launch_overhead_s: 25e-6,
            power_watts: 200.0,
        }
    }

    /// Efficiency achieved on a layer of the given MAC count.
    pub fn efficiency(&self, layer_macs: u64) -> f64 {
        let m = layer_macs as f64;
        self.max_efficiency * m / (m + self.half_size_macs)
    }

    /// Seconds to run the given executions from scratch (software performs
    /// every MAC — there is no reuse on the reference platforms).
    pub fn seconds_for(&self, traces: &[ExecutionTrace]) -> f64 {
        let mut seconds = 0.0;
        for trace in traces {
            for layer in &trace.layers {
                let flops = 2.0 * layer.macs_total as f64;
                let eff = self.efficiency(layer.macs_total).max(1e-4);
                seconds += flops / (self.peak_flops * eff) + self.launch_overhead_s;
            }
        }
        seconds
    }

    /// Joules for the given executions.
    pub fn energy_for(&self, traces: &[ExecutionTrace]) -> f64 {
        self.seconds_for(traces) * self.power_watts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reuse_core::{LayerTrace, TraceKind};
    use reuse_nn::LayerKind;

    fn trace_of(macs: u64) -> Vec<ExecutionTrace> {
        vec![ExecutionTrace {
            layers: vec![LayerTrace {
                name: "l".into(),
                kind: LayerKind::Fc,
                mode: TraceKind::ScratchFp32,
                n_inputs: 100,
                n_changed: 100,
                n_outputs: 100,
                n_params: 10_000,
                macs_total: macs,
                macs_performed: macs,
            }],
        }]
    }

    #[test]
    fn efficiency_saturates_with_size() {
        let gpu = ReferencePlatform::gtx_1080();
        assert!(gpu.efficiency(1_000_000) < 0.05);
        assert!(gpu.efficiency(2_000_000_000) > 0.6);
        let cpu = ReferencePlatform::cpu_i7_7700k();
        // The CPU reaches useful efficiency on much smaller layers.
        assert!(cpu.efficiency(2_000_000) > gpu.efficiency(2_000_000));
    }

    #[test]
    fn gpu_wins_only_on_large_layers() {
        let cpu = ReferencePlatform::cpu_i7_7700k();
        let gpu = ReferencePlatform::gtx_1080();
        let small = trace_of(800_000); // Kaldi-sized FC layer
        let large = trace_of(2_000_000_000); // C3D-sized conv layer
        assert!(cpu.seconds_for(&small) < gpu.seconds_for(&small));
        assert!(gpu.seconds_for(&large) < cpu.seconds_for(&large));
    }

    #[test]
    fn energy_is_power_times_time() {
        let cpu = ReferencePlatform::cpu_i7_7700k();
        let t = trace_of(10_000_000);
        let s = cpu.seconds_for(&t);
        assert!((cpu.energy_for(&t) - s * 80.0).abs() < 1e-12);
    }

    #[test]
    fn seconds_scale_with_work() {
        let gpu = ReferencePlatform::gtx_1080();
        let one = trace_of(1_000_000_000);
        let mut ten = Vec::new();
        for _ in 0..10 {
            ten.extend(trace_of(1_000_000_000));
        }
        let r = gpu.seconds_for(&ten) / gpu.seconds_for(&one);
        assert!((r - 10.0).abs() < 1e-9);
    }
}

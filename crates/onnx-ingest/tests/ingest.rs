//! End-to-end ingestion tests: parse -> lower -> execute through the reuse
//! engine, checked against hand-built twin networks.

use reuse_core::{ReuseConfig, ReuseEngine};
use reuse_nn::init::Rng64;
use reuse_nn::lstm::NUM_GATES;
use reuse_nn::{Activation, Layer, LayerKind, LstmCell, NetworkBuilder};
use reuse_onnx_ingest::fixture::{self, node, tensor_proto, value_info};
use reuse_onnx_ingest::wire::Writer;
use reuse_onnx_ingest::{ingest, parse_model, IngestError};
use reuse_tensor::{Shape, Tensor};

/// A smooth random walk of frames, mimicking consecutive audio windows.
fn walk(len: usize, dim: usize, step: f32, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = Rng64::new(seed);
    let mut frame: Vec<f32> = (0..dim).map(|_| rng.uniform(0.5)).collect();
    (0..len)
        .map(|_| {
            for v in &mut frame {
                *v = (*v + rng.uniform(step)).clamp(-1.0, 1.0);
            }
            frame.clone()
        })
        .collect()
}

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("testdata")
        .join("gemm_relu.onnx")
}

/// Regenerates the checked-in fixture when REUSE_REGEN_FIXTURES=1 is set.
#[test]
fn regen_fixture_when_requested() {
    if std::env::var("REUSE_REGEN_FIXTURES").as_deref() == Ok("1") {
        std::fs::write(fixture_path(), fixture::gemm_relu_bytes()).expect("write fixture");
    }
}

#[test]
fn checked_in_fixture_matches_generator() {
    let on_disk = std::fs::read(fixture_path())
        .expect("testdata/gemm_relu.onnx is checked in (REUSE_REGEN_FIXTURES=1 regenerates it)");
    assert_eq!(
        on_disk,
        fixture::gemm_relu_bytes(),
        "fixture drifted from its generator"
    );
}

#[test]
fn fixture_parses_with_expected_structure() {
    let model = parse_model(&fixture::gemm_relu_bytes()).unwrap();
    assert_eq!(model.graph.name, "gemm_relu");
    assert_eq!(model.graph.nodes.len(), 2);
    assert_eq!(model.graph.nodes[0].op_type, "Gemm");
    assert_eq!(model.graph.nodes[1].op_type, "Relu");
    assert_eq!(model.graph.initializers.len(), 2);
    let w = model.graph.initializer("W").unwrap();
    assert_eq!(w.dims, [8, 4]);
    assert_eq!(w.floats().unwrap().len(), 32);
}

#[test]
fn gemm_relu_lowers_to_one_fused_fc() {
    let lowered = ingest(&fixture::gemm_relu_bytes()).unwrap();
    assert!(lowered.fallbacks.is_empty(), "{:?}", lowered.fallbacks);
    assert!(lowered.skipped.is_empty());
    let layers = lowered.network.layers();
    assert_eq!(layers.len(), 1);
    let Layer::FullyConnected(fc) = &layers[0].1 else {
        panic!("expected a fused FC, got {:?}", layers[0].1.kind());
    };
    assert_eq!(fc.activation(), Activation::Relu);
}

/// The ISSUE acceptance gate: the ingested Gemm+Relu model must execute
/// bit-identically to the hand-built twin carrying the same weights, both
/// running through the same CompiledModel/ReuseEngine path.
#[test]
fn ingested_fixture_is_bit_identical_to_hand_built_network() {
    let lowered = ingest(&fixture::gemm_relu_bytes()).unwrap();
    let twin = fixture::gemm_relu_network();
    let config = ReuseConfig::uniform(64);
    let mut ingested = ReuseEngine::from_network(&lowered.network, &config);
    let mut reference = ReuseEngine::from_network(&twin, &config);
    for frame in walk(64, fixture::GEMM_IN, 0.05, 42) {
        let a = ingested.execute(&frame).unwrap();
        let b = reference.execute(&frame).unwrap();
        assert_eq!(
            a.as_slice(),
            b.as_slice(),
            "ingested and hand-built diverged"
        );
    }
}

/// An unsupported-but-executable op (Softmax) must still compile and serve,
/// charging full MACs and recording zero reuse on the passthrough slot.
#[test]
fn softmax_graph_serves_through_recompute_always_fallback() {
    let lowered = ingest(&fixture::unsupported_softmax_bytes()).unwrap();
    assert_eq!(lowered.fallbacks.len(), 1);
    let (pass_name, op) = &lowered.fallbacks[0];
    assert_eq!(op, "Softmax");
    assert_eq!(
        lowered.network.layers().len(),
        3,
        "Gemm, Softmax passthrough, Gemm"
    );
    assert_eq!(lowered.network.layers()[1].0, *pass_name);
    assert_eq!(lowered.network.layers()[1].1.kind(), LayerKind::Passthrough);

    let mut engine = ReuseEngine::from_network(&lowered.network, &ReuseConfig::uniform(64));
    for frame in walk(48, 8, 0.03, 7) {
        let out = engine.execute(&frame).unwrap();
        let sum: f32 = out.as_slice().iter().sum();
        assert!(sum.is_finite());
    }
    let metrics = engine.metrics();
    let pass = metrics.layer(pass_name).expect("passthrough has a slot");
    assert!(pass.macs_total > 0, "full cost must be charged");
    assert_eq!(pass.macs_performed, pass.macs_total, "recompute-always");
    assert_eq!(pass.computation_reuse(), 0.0);
    assert_eq!(pass.input_similarity(), 0.0);
    // The surrounding Gemm layers still participate in reuse.
    assert!(metrics.layer("fc1").unwrap().macs_total > 0);
}

/// MatMul followed by Add of an initializer fuses into a single FC with
/// bias, bit-identical to the hand-built layer.
#[test]
fn matmul_add_fuses_into_fc_with_bias() {
    let weights: Vec<f32> = (0..12).map(|i| (i as f32 - 6.0) / 32.0).collect();
    let bias: Vec<f32> = (0..4).map(|j| (j as f32) / 16.0).collect();
    let mut model = Writer::new();
    model.field_message(7, |graph| {
        graph.field_str(2, "matmul_add");
        graph.field_message(1, |n| node(n, "MatMul", "mm", &["x", "W"], &["h"]));
        // Bias on the left to exercise operand-order handling.
        graph.field_message(1, |n| node(n, "Add", "addb", &["B", "h"], &["y"]));
        graph.field_message(5, |t| tensor_proto(t, "W", &[3, 4], &weights));
        graph.field_message(5, |t| tensor_proto(t, "B", &[4], &bias));
        graph.field_message(11, |v| value_info(v, "x", &[1, 3]));
        graph.field_message(12, |v| value_info(v, "y", &[1, 4]));
    });
    let lowered = ingest(&model.into_bytes()).unwrap();
    assert_eq!(lowered.network.layers().len(), 1, "Add must fuse away");

    let twin = NetworkBuilder::with_input_shape("twin", Shape::d1(3))
        .push_layer(Layer::FullyConnected(
            reuse_nn::FullyConnected::new(
                Tensor::from_vec(Shape::d2(3, 4), weights).unwrap(),
                Tensor::from_vec(Shape::d1(4), bias).unwrap(),
                Activation::Identity,
            )
            .unwrap(),
        ))
        .build()
        .unwrap();
    for frame in walk(8, 3, 0.2, 3) {
        assert_eq!(
            lowered.network.forward_flat(&frame).unwrap().as_slice(),
            twin.forward_flat(&frame).unwrap().as_slice()
        );
    }
}

/// Gemm with transB=1 and alpha/beta scaling matches a hand-built FC with
/// pre-transposed, pre-scaled parameters.
#[test]
fn gemm_transb_alpha_beta_lowering() {
    // W stored [n_out, n_in] = [2, 3]; alpha 0.5, beta 2.0 — all powers of
    // two, so scaling is exact.
    let w_nk = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0];
    let c = [0.25f32, -0.5];
    let mut model = Writer::new();
    model.field_message(7, |graph| {
        graph.field_str(2, "gemm_t");
        graph.field_message(1, |n| {
            node(n, "Gemm", "g", &["x", "W", "C"], &["y"]);
            n.field_message(5, |a| {
                a.field_str(1, "transB");
                a.field_varint(3, 1);
            });
            n.field_message(5, |a| {
                a.field_str(1, "alpha");
                a.field_f32(2, 0.5);
            });
            n.field_message(5, |a| {
                a.field_str(1, "beta");
                a.field_f32(2, 2.0);
            });
        });
        graph.field_message(5, |t| tensor_proto(t, "W", &[2, 3], &w_nk));
        graph.field_message(5, |t| tensor_proto(t, "C", &[2], &c));
        graph.field_message(11, |v| value_info(v, "x", &[1, 3]));
        graph.field_message(12, |v| value_info(v, "y", &[1, 2]));
    });
    let lowered = ingest(&model.into_bytes()).unwrap();
    // Transposed to [n_in, n_out] and scaled by alpha.
    let w_kn: Vec<f32> = vec![0.5, 2.0, 1.0, 2.5, 1.5, 3.0];
    let bias: Vec<f32> = vec![0.5, -1.0];
    let twin = NetworkBuilder::with_input_shape("twin", Shape::d1(3))
        .push_layer(Layer::FullyConnected(
            reuse_nn::FullyConnected::new(
                Tensor::from_vec(Shape::d2(3, 2), w_kn).unwrap(),
                Tensor::from_vec(Shape::d1(2), bias).unwrap(),
                Activation::Identity,
            )
            .unwrap(),
        ))
        .build()
        .unwrap();
    for frame in walk(8, 3, 0.2, 9) {
        assert_eq!(
            lowered.network.forward_flat(&frame).unwrap().as_slice(),
            twin.forward_flat(&frame).unwrap().as_slice()
        );
    }
}

/// An ONNX LSTM (gates packed [i, o, f, c], hidden-major weights) must
/// execute exactly like a native cell built with per-gate tensors.
#[test]
fn lstm_gate_remap_matches_native_cell() {
    let n_in = 3;
    let hidden = 2;
    let mut rng = Rng64::new(0xC0FFEE);
    // Native per-gate parameters in the repo's [i, f, g, o] order.
    let quant = |r: &mut Rng64| (r.uniform(0.5) * 32.0).round() / 32.0;
    let gate_w_x: Vec<Vec<f32>> = (0..NUM_GATES)
        .map(|_| (0..n_in * hidden).map(|_| quant(&mut rng)).collect())
        .collect();
    let gate_w_h: Vec<Vec<f32>> = (0..NUM_GATES)
        .map(|_| (0..hidden * hidden).map(|_| quant(&mut rng)).collect())
        .collect();
    let gate_bias: Vec<Vec<f32>> = (0..NUM_GATES)
        .map(|_| (0..hidden).map(|_| quant(&mut rng)).collect())
        .collect();

    // Pack into ONNX layout: W [1, 4*hidden, n_in] with chunk order
    // [i, o, f, c] and hidden-major rows (the transpose of our tensors).
    let ours_for_chunk = [0usize, 3, 1, 2]; // chunk i<-gate0, o<-gate3, f<-gate1, c<-gate2
    let mut w = Vec::new();
    let mut r = Vec::new();
    let mut b = Vec::new();
    for &g in &ours_for_chunk {
        // gate_w_x[g] is [n_in, hidden] row-major; ONNX wants [hidden, n_in].
        for h in 0..hidden {
            for i in 0..n_in {
                w.push(gate_w_x[g][i * hidden + h]);
            }
        }
    }
    for &g in &ours_for_chunk {
        for h in 0..hidden {
            for h2 in 0..hidden {
                r.push(gate_w_h[g][h2 * hidden + h]);
            }
        }
    }
    // Split each gate bias into Wb and Rb halves that sum back: Wb = bias
    // minus 0.25, Rb = 0.25 (both exact in f32).
    for &g in &ours_for_chunk {
        b.extend(gate_bias[g].iter().take(hidden).map(|v| v - 0.25));
    }
    b.extend(std::iter::repeat_n(0.25, ours_for_chunk.len() * hidden));

    let mut model = Writer::new();
    model.field_message(7, |graph| {
        graph.field_str(2, "lstm");
        graph.field_message(1, |n| {
            node(n, "LSTM", "rnn", &["x", "W", "R", "B"], &["Y", "Y_h"]);
            n.field_message(5, |a| {
                a.field_str(1, "hidden_size");
                a.field_varint(3, hidden as u64);
            });
        });
        graph.field_message(5, |t| tensor_proto(t, "W", &[1, 4 * hidden, n_in], &w));
        graph.field_message(5, |t| tensor_proto(t, "R", &[1, 4 * hidden, hidden], &r));
        graph.field_message(5, |t| tensor_proto(t, "B", &[1, 8 * hidden], &b));
        graph.field_message(11, |v| value_info(v, "x", &[16, 1, n_in]));
        graph.field_message(12, |v| value_info(v, "Y_h", &[1, 1, hidden]));
    });
    let lowered = ingest(&model.into_bytes()).unwrap();
    assert_eq!(lowered.network.layers()[0].1.kind(), LayerKind::Recurrent);

    let as4 = |v: &[Vec<f32>], shape: Shape| -> [Tensor; NUM_GATES] {
        let tensors: Vec<Tensor> = v
            .iter()
            .map(|g| Tensor::from_vec(shape.clone(), g.clone()).unwrap())
            .collect();
        tensors.try_into().unwrap()
    };
    let cell = LstmCell::new(
        n_in,
        hidden,
        as4(&gate_w_x, Shape::d2(n_in, hidden)),
        as4(&gate_w_h, Shape::d2(hidden, hidden)),
        as4(&gate_bias, Shape::d1(hidden)),
    )
    .unwrap();
    let twin = NetworkBuilder::with_input_shape("twin", Shape::d1(n_in))
        .push_layer(Layer::Lstm(cell))
        .build()
        .unwrap();

    let frames = walk(16, n_in, 0.3, 21);
    let a = lowered.network.forward_sequence(&frames).unwrap();
    let b = twin.forward_sequence(&frames).unwrap();
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.as_slice(), y.as_slice(), "gate remap diverged");
    }
}

#[test]
fn truncated_model_reports_offset() {
    let bytes = fixture::gemm_relu_bytes();
    let err = parse_model(&bytes[..bytes.len() - 5]).unwrap_err();
    assert!(
        matches!(err, IngestError::Malformed { .. }),
        "expected Malformed, got {err}"
    );
}

#[test]
fn unknown_op_is_a_hard_error() {
    let mut model = Writer::new();
    model.field_message(7, |graph| {
        graph.field_str(2, "attn");
        graph.field_message(1, |n| node(n, "Attention", "a", &["x"], &["y"]));
        graph.field_message(11, |v| value_info(v, "x", &[1, 8]));
        graph.field_message(12, |v| value_info(v, "y", &[1, 8]));
    });
    let err = ingest(&model.into_bytes()).unwrap_err();
    match err {
        IngestError::UnsupportedOp { op, .. } => assert_eq!(op, "Attention"),
        other => panic!("expected UnsupportedOp, got {other}"),
    }
}

#[test]
fn branching_graph_is_rejected() {
    // Second node consumes the graph input again instead of the chain.
    let mut model = Writer::new();
    model.field_message(7, |graph| {
        graph.field_str(2, "branch");
        graph.field_message(1, |n| node(n, "Relu", "r1", &["x"], &["h"]));
        graph.field_message(1, |n| node(n, "Relu", "r2", &["x"], &["y"]));
        graph.field_message(11, |v| value_info(v, "x", &[1, 8]));
        graph.field_message(12, |v| value_info(v, "y", &[1, 8]));
    });
    let err = ingest(&model.into_bytes()).unwrap_err();
    assert!(
        matches!(err, IngestError::NotSequential { .. }),
        "expected NotSequential, got {err}"
    );
}

#[test]
fn identity_and_dropout_are_skipped() {
    let mut model = Writer::new();
    model.field_message(7, |graph| {
        graph.field_str(2, "noops");
        graph.field_message(1, |n| node(n, "Identity", "id", &["x"], &["h0"]));
        graph.field_message(1, |n| node(n, "Dropout", "drop", &["h0"], &["h1"]));
        graph.field_message(1, |n| node(n, "Relu", "act", &["h1"], &["y"]));
        graph.field_message(11, |v| value_info(v, "x", &[1, 8]));
        graph.field_message(12, |v| value_info(v, "y", &[1, 8]));
    });
    let lowered = ingest(&model.into_bytes()).unwrap();
    assert_eq!(lowered.skipped, ["id", "drop"]);
    // The Relu has no producer to fuse into, so it serves as a passthrough.
    assert_eq!(lowered.fallbacks.len(), 1);
    assert_eq!(lowered.fallbacks[0].1, "Relu");
}

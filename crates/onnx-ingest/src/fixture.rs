//! Deterministic ONNX fixtures, generated with [`crate::wire::Writer`].
//!
//! `testdata/gemm_relu.onnx` is these exact bytes checked into the repo; a
//! test asserts the file matches [`gemm_relu_bytes`] so the fixture can
//! never drift from the generator. All weights are small multiples of
//! 1/64 — exactly representable in f32, so the ingested network and the
//! hand-built twin from [`gemm_relu_network`] are bit-identical.

use crate::wire::Writer;
use reuse_nn::{Activation, FullyConnected, Layer, Network, NetworkBuilder};
use reuse_tensor::{Shape, Tensor};

/// Input width of the Gemm+Relu fixture.
pub const GEMM_IN: usize = 8;
/// Output width of the Gemm+Relu fixture.
pub const GEMM_OUT: usize = 4;

/// Deterministic weight at flat index `i`: a multiple of 1/64 in
/// roughly [-0.17, 0.17].
fn weight(i: usize) -> f32 {
    ((i * 7 % 23) as f32 - 11.0) / 64.0
}

/// Deterministic bias at index `j`: a multiple of 1/16.
fn bias(j: usize) -> f32 {
    (j as f32 - 1.5) / 8.0
}

fn gemm_weights(n_in: usize, n_out: usize, salt: usize) -> Vec<f32> {
    (0..n_in * n_out).map(|i| weight(i + salt)).collect()
}

fn gemm_bias(n_out: usize, salt: usize) -> Vec<f32> {
    (0..n_out).map(|j| bias(j + salt)).collect()
}

/// Writes a float `TensorProto` with `raw_data` payload.
pub fn tensor_proto(w: &mut Writer, name: &str, dims: &[usize], data: &[f32]) {
    for &d in dims {
        w.field_varint(1, d as u64);
    }
    w.field_varint(2, 1); // data_type = FLOAT
    w.field_str(8, name);
    let mut raw = Vec::with_capacity(data.len() * 4);
    for v in data {
        raw.extend_from_slice(&v.to_le_bytes());
    }
    w.field_bytes(9, &raw);
}

/// Writes a `ValueInfoProto` with a static float tensor shape.
pub fn value_info(w: &mut Writer, name: &str, dims: &[usize]) {
    w.field_str(1, name);
    w.field_message(2, |ty| {
        ty.field_message(1, |tt| {
            tt.field_varint(1, 1); // elem_type = FLOAT
            tt.field_message(2, |shape| {
                for &d in dims {
                    shape.field_message(1, |dim| dim.field_varint(1, d as u64));
                }
            });
        });
    });
}

/// Writes a `NodeProto`.
pub fn node(w: &mut Writer, op: &str, name: &str, inputs: &[&str], outputs: &[&str]) {
    for i in inputs {
        w.field_str(1, i);
    }
    for o in outputs {
        w.field_str(2, o);
    }
    w.field_str(3, name);
    w.field_str(4, op);
}

/// The checked-in fixture: `x [1,8] -> Gemm(W [8,4], C [4]) -> Relu -> y`.
pub fn gemm_relu_bytes() -> Vec<u8> {
    let mut model = Writer::new();
    model.field_varint(1, 8); // ir_version
    model.field_message(7, |graph| {
        graph.field_str(2, "gemm_relu");
        graph.field_message(1, |n| {
            node(n, "Gemm", "dense", &["x", "W", "C"], &["h"]);
        });
        graph.field_message(1, |n| {
            node(n, "Relu", "act", &["h"], &["y"]);
        });
        graph.field_message(5, |t| {
            tensor_proto(
                t,
                "W",
                &[GEMM_IN, GEMM_OUT],
                &gemm_weights(GEMM_IN, GEMM_OUT, 0),
            );
        });
        graph.field_message(5, |t| {
            tensor_proto(t, "C", &[GEMM_OUT], &gemm_bias(GEMM_OUT, 0));
        });
        graph.field_message(11, |v| value_info(v, "x", &[1, GEMM_IN]));
        graph.field_message(12, |v| value_info(v, "y", &[1, GEMM_OUT]));
    });
    model.into_bytes()
}

/// The hand-built twin of [`gemm_relu_bytes`]: same weights, same bias,
/// Relu fused — ingested and hand-built networks must agree bit for bit.
///
/// # Panics
///
/// Never — the fixture dimensions are static and valid.
pub fn gemm_relu_network() -> Network {
    let weights = Tensor::from_vec(
        Shape::d2(GEMM_IN, GEMM_OUT),
        gemm_weights(GEMM_IN, GEMM_OUT, 0),
    )
    .expect("static fixture shape");
    let bias = Tensor::from_vec(Shape::d1(GEMM_OUT), gemm_bias(GEMM_OUT, 0))
        .expect("static fixture shape");
    let fc = FullyConnected::new(weights, bias, Activation::Relu).expect("static fixture shape");
    NetworkBuilder::with_input_shape("gemm_relu", Shape::d1(GEMM_IN))
        .push_layer(Layer::FullyConnected(fc))
        .build()
        .expect("static fixture network")
}

/// An in-memory model with an op the engine cannot reuse:
/// `x [1,8] -> Gemm(8->4) -> Softmax -> Gemm(4->3) -> y`. The Softmax must
/// lower to a recompute-always passthrough slot.
pub fn unsupported_softmax_bytes() -> Vec<u8> {
    let mut model = Writer::new();
    model.field_varint(1, 8);
    model.field_message(7, |graph| {
        graph.field_str(2, "gemm_softmax_gemm");
        graph.field_message(1, |n| {
            node(n, "Gemm", "dense0", &["x", "W0", "C0"], &["h0"]);
        });
        graph.field_message(1, |n| {
            node(n, "Softmax", "probs", &["h0"], &["h1"]);
        });
        graph.field_message(1, |n| {
            node(n, "Gemm", "dense1", &["h1", "W1", "C1"], &["y"]);
        });
        graph.field_message(5, |t| {
            tensor_proto(t, "W0", &[8, 4], &gemm_weights(8, 4, 0));
        });
        graph.field_message(5, |t| tensor_proto(t, "C0", &[4], &gemm_bias(4, 0)));
        graph.field_message(5, |t| {
            tensor_proto(t, "W1", &[4, 3], &gemm_weights(4, 3, 5));
        });
        graph.field_message(5, |t| tensor_proto(t, "C1", &[3], &gemm_bias(3, 2)));
        graph.field_message(11, |v| value_info(v, "x", &[1, 8]));
        graph.field_message(12, |v| value_info(v, "y", &[1, 3]));
    });
    model.into_bytes()
}

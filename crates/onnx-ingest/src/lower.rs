//! Lowers a parsed ONNX graph into a [`reuse_nn::Network`].
//!
//! The reuse engine executes sequential frame-streamed models, so lowering
//! requires the graph to be a single chain: exactly one non-initializer
//! input, and each node consuming the previous node's output (other inputs
//! must be initializers). Supported ops map onto native layers:
//!
//! | ONNX                        | lowered to                               |
//! |-----------------------------|------------------------------------------|
//! | `Gemm` (transA=0)           | `FullyConnected`                         |
//! | `MatMul` (+ fused `Add`)    | `FullyConnected`                         |
//! | `Conv` 2D (group=1)         | `Conv2dLayer`                            |
//! | `LSTM` fwd / bidirectional  | `LstmCell` / `BiLstmLayer`               |
//! | `Relu`/`Sigmoid`/`Tanh`     | fused into the producer, else passthrough|
//! | `Flatten`/`Reshape`/…       | `Layer::Flatten`                         |
//! | `Identity`/`Dropout`        | dropped                                  |
//!
//! Executable-but-not-reusable ops (`MaxPool`, `AveragePool`,
//! `GlobalAveragePool`, `Softmax`, unfusable activations) become
//! recompute-always [`PassthroughLayer`]s — full MACs charged, zero reuse
//! recorded. Anything else is [`IngestError::UnsupportedOp`].

use crate::proto::{GraphProto, ModelProto, NodeProto, TensorInit};
use crate::IngestError;
use reuse_nn::lstm::NUM_GATES;
use reuse_nn::{
    Activation, BiLstmLayer, Conv2dLayer, FullyConnected, Layer, LstmCell, Network, NetworkBuilder,
    PassthroughLayer, PassthroughOp, PoolSpec2d,
};
use reuse_tensor::conv::Conv2dSpec;
use reuse_tensor::{Shape, Tensor};

/// The result of lowering: a runnable network plus an account of what did
/// not lower natively.
#[derive(Debug)]
pub struct LoweredModel {
    /// The lowered network.
    pub network: Network,
    /// `(layer_name, onnx_op)` for every recompute-always passthrough slot.
    pub fallbacks: Vec<(String, String)>,
    /// Display names of nodes dropped as no-ops (`Identity`, `Dropout`).
    pub skipped: Vec<String>,
}

/// Lowers a parsed model.
///
/// # Errors
///
/// Returns [`IngestError::NotSequential`] for branching graphs,
/// [`IngestError::UnsupportedOp`] for ops that cannot be executed,
/// [`IngestError::Shape`]/[`IngestError::MissingField`] for inconsistent
/// metadata, and [`IngestError::Nn`] when layer construction rejects the
/// decoded weights.
pub fn lower(model: &ModelProto) -> Result<LoweredModel, IngestError> {
    Lowering::new(&model.graph)?.run()
}

struct Lowering<'a> {
    graph: &'a GraphProto,
    /// Accepted names for the current tensor (LSTM exposes both Y and Y_h).
    cur_names: Vec<String>,
    cur_shape: Shape,
    layers: Vec<Layer>,
    /// `(layer_index, onnx_op)`; resolved to builder names after `build()`.
    fallback_slots: Vec<(usize, String)>,
    skipped: Vec<String>,
}

impl<'a> Lowering<'a> {
    fn new(graph: &'a GraphProto) -> Result<Self, IngestError> {
        let data_input = graph_data_input(graph)?;
        let cur_shape = infer_input_shape(graph, &data_input)?;
        Ok(Lowering {
            graph,
            cur_names: vec![data_input],
            cur_shape,
            layers: Vec::new(),
            fallback_slots: Vec::new(),
            skipped: Vec::new(),
        })
    }

    fn run(mut self) -> Result<LoweredModel, IngestError> {
        let nodes = &self.graph.nodes;
        let mut i = 0;
        while i < nodes.len() {
            let node = &nodes[i];
            self.check_chain(node)?;
            let consumed = self.lower_node(node, nodes.get(i + 1))?;
            i += consumed;
        }
        // The chain must end on a declared graph output (when any are
        // declared — some hand-built graphs omit them).
        if !self.graph.outputs.is_empty()
            && !self
                .graph
                .outputs
                .iter()
                .any(|o| self.cur_names.contains(&o.name))
        {
            return Err(IngestError::NotSequential {
                context: format!(
                    "chain ends at {:?} but graph outputs are {:?}",
                    self.cur_names,
                    self.graph
                        .outputs
                        .iter()
                        .map(|o| &o.name)
                        .collect::<Vec<_>>()
                ),
            });
        }

        let name = if self.graph.name.is_empty() {
            "onnx".to_string()
        } else {
            self.graph.name.clone()
        };
        let mut builder = NetworkBuilder::with_input_shape(
            &name,
            infer_input_shape(self.graph, &graph_data_input(self.graph)?)?,
        );
        for layer in self.layers {
            builder = builder.push_layer(layer);
        }
        let network = builder.build()?;
        let fallbacks = self
            .fallback_slots
            .into_iter()
            .map(|(idx, op)| (network.layers()[idx].0.clone(), op))
            .collect();
        Ok(LoweredModel {
            network,
            fallbacks,
            skipped: self.skipped,
        })
    }

    /// Verifies the node consumes the current tensor and that every other
    /// input is an initializer (or an omitted optional, "").
    fn check_chain(&self, node: &NodeProto) -> Result<(), IngestError> {
        let Some(first) = node.inputs.first() else {
            return Err(IngestError::NotSequential {
                context: format!("node {:?} has no inputs", node.display_name()),
            });
        };
        if !self.cur_names.contains(first) {
            return Err(IngestError::NotSequential {
                context: format!(
                    "node {:?} consumes {first:?} but the chain is at {:?}",
                    node.display_name(),
                    self.cur_names
                ),
            });
        }
        for extra in &node.inputs[1..] {
            if !extra.is_empty() && self.graph.initializer(extra).is_none() {
                return Err(IngestError::NotSequential {
                    context: format!(
                        "node {:?} input {extra:?} is neither the chain nor an initializer",
                        node.display_name()
                    ),
                });
            }
        }
        Ok(())
    }

    /// Lowers one node (possibly consuming a following fused node).
    /// Returns how many nodes were consumed.
    fn lower_node(
        &mut self,
        node: &NodeProto,
        next: Option<&NodeProto>,
    ) -> Result<usize, IngestError> {
        match node.op_type.as_str() {
            "Gemm" => {
                let layer = self.lower_gemm(node)?;
                self.push(node, layer)?;
                Ok(1)
            }
            "MatMul" => self.lower_matmul(node, next),
            "Conv" => {
                let layer = self.lower_conv(node)?;
                self.push(node, layer)?;
                Ok(1)
            }
            "LSTM" => {
                let layer = self.lower_lstm(node)?;
                self.layers.push(layer);
                let idx = self.layers.len() - 1;
                self.cur_shape = self.layers[idx]
                    .output_shape(&self.cur_shape)
                    .map_err(IngestError::Nn)?;
                // Downstream nodes may read the full sequence Y or the last
                // hidden state Y_h; frame-wise execution makes them the
                // same stream, so accept either name.
                self.cur_names = node
                    .outputs
                    .iter()
                    .filter(|o| !o.is_empty())
                    .cloned()
                    .collect();
                if self.cur_names.is_empty() {
                    return Err(IngestError::NotSequential {
                        context: format!("LSTM {:?} has no outputs", node.display_name()),
                    });
                }
                Ok(1)
            }
            "Relu" | "Sigmoid" | "Tanh" => {
                let act = match node.op_type.as_str() {
                    "Relu" => Activation::Relu,
                    "Sigmoid" => Activation::Sigmoid,
                    _ => Activation::Tanh,
                };
                if self.fuse_activation(act) {
                    self.rename(node)?;
                } else {
                    self.push_fallback(node, PassthroughOp::Elementwise(act))?;
                }
                Ok(1)
            }
            "Flatten" | "Reshape" | "Squeeze" | "Unsqueeze" => {
                // All four are volume-preserving; the engine streams flat
                // frames, so they lower to a plain flatten.
                self.push(node, Layer::Flatten)?;
                Ok(1)
            }
            "Identity" | "Dropout" => {
                self.skipped.push(node.display_name());
                self.rename(node)?;
                Ok(1)
            }
            "Softmax" => {
                self.push_fallback(node, PassthroughOp::Softmax)?;
                Ok(1)
            }
            "GlobalAveragePool" => {
                self.push_fallback(node, PassthroughOp::GlobalAveragePool)?;
                Ok(1)
            }
            "MaxPool" => {
                let spec = pool_spec(node)?;
                self.push_fallback(node, PassthroughOp::MaxPool2d(spec))?;
                Ok(1)
            }
            "AveragePool" => {
                if node.attr_i("count_include_pad", 0) != 0 {
                    return Err(unsupported(node, "count_include_pad=1 is not implemented"));
                }
                let spec = pool_spec(node)?;
                self.push_fallback(node, PassthroughOp::AveragePool2d(spec))?;
                Ok(1)
            }
            other => Err(IngestError::UnsupportedOp {
                node: node.display_name(),
                op: other.to_string(),
                why: "no native lowering and no correct passthrough execution".into(),
            }),
        }
    }

    /// Pushes a native layer and advances the chain to the node's output.
    fn push(&mut self, node: &NodeProto, layer: Layer) -> Result<(), IngestError> {
        self.cur_shape = layer
            .output_shape(&self.cur_shape)
            .map_err(IngestError::Nn)?;
        self.layers.push(layer);
        self.rename(node)
    }

    /// Pushes a passthrough fallback layer and records it.
    fn push_fallback(&mut self, node: &NodeProto, op: PassthroughOp) -> Result<(), IngestError> {
        let layer = Layer::Passthrough(PassthroughLayer::new(op));
        self.cur_shape = layer
            .output_shape(&self.cur_shape)
            .map_err(IngestError::Nn)?;
        self.layers.push(layer);
        self.fallback_slots
            .push((self.layers.len() - 1, node.op_type.clone()));
        self.rename(node)
    }

    /// Advances the chain name to the node's (single) output.
    fn rename(&mut self, node: &NodeProto) -> Result<(), IngestError> {
        let Some(out) = node.outputs.first().filter(|o| !o.is_empty()) else {
            return Err(IngestError::NotSequential {
                context: format!("node {:?} has no output", node.display_name()),
            });
        };
        self.cur_names = vec![out.clone()];
        Ok(())
    }

    /// Rebuilds the previous FC/Conv2d layer with `act` when its activation
    /// is still `Identity`. Returns false when nothing can absorb it.
    fn fuse_activation(&mut self, act: Activation) -> bool {
        match self.layers.last() {
            Some(Layer::FullyConnected(fc)) if fc.activation() == Activation::Identity => {
                let fused = FullyConnected::new(fc.weights().clone(), fc.bias().clone(), act)
                    .expect("rebuilding with identical shapes");
                *self.layers.last_mut().expect("just matched") = Layer::FullyConnected(fused);
                true
            }
            Some(Layer::Conv2d(conv)) if conv.activation() == Activation::Identity => {
                let fused = Conv2dLayer::new(
                    *conv.spec(),
                    conv.weights().clone(),
                    conv.bias().clone(),
                    act,
                )
                .expect("rebuilding with identical shapes");
                *self.layers.last_mut().expect("just matched") = Layer::Conv2d(fused);
                true
            }
            _ => false,
        }
    }

    fn initializer(
        &self,
        node: &NodeProto,
        input_idx: usize,
    ) -> Result<&'a TensorInit, IngestError> {
        let name = node
            .inputs
            .get(input_idx)
            .filter(|n| !n.is_empty())
            .ok_or_else(|| IngestError::MissingField {
                context: format!("node {:?} input #{input_idx}", node.display_name()),
            })?;
        self.graph
            .initializer(name)
            .ok_or_else(|| IngestError::MissingField {
                context: format!("initializer {name:?} for node {:?}", node.display_name()),
            })
    }

    fn lower_gemm(&self, node: &NodeProto) -> Result<Layer, IngestError> {
        if node.attr_i("transA", 0) != 0 {
            return Err(unsupported(node, "transA=1 (transposed data input)"));
        }
        let alpha = node.attr_f("alpha", 1.0);
        let beta = node.attr_f("beta", 1.0);
        let b = self.initializer(node, 1)?;
        let (k, n, weights) = if node.attr_i("transB", 0) == 0 {
            let [k, n] = dims2(b, node)?;
            (k, n, b.floats()?.to_vec())
        } else {
            let [n, k] = dims2(b, node)?;
            (k, n, transpose(b.floats()?, n, k))
        };
        let mut weights = weights;
        if alpha != 1.0 {
            for w in &mut weights {
                *w *= alpha;
            }
        }
        let bias = match node.inputs.get(2).filter(|c| !c.is_empty()) {
            Some(_) => {
                let c = self.initializer(node, 2)?;
                let vals = c.floats()?;
                let mut bias = match vals.len() {
                    1 => vec![vals[0]; n],
                    l if l == n => vals.to_vec(),
                    l => {
                        return Err(IngestError::Shape {
                            context: format!(
                                "Gemm {:?} bias has {l} elements, expected {n}",
                                node.display_name()
                            ),
                        })
                    }
                };
                if beta != 1.0 {
                    for v in &mut bias {
                        *v *= beta;
                    }
                }
                bias
            }
            None => vec![0.0; n],
        };
        fc_layer(node, k, n, weights, bias, Activation::Identity)
    }

    /// `MatMul`, fusing a directly-following `Add` of an initializer as the
    /// bias. Returns how many nodes were consumed (1 or 2).
    fn lower_matmul(
        &mut self,
        node: &NodeProto,
        next: Option<&NodeProto>,
    ) -> Result<usize, IngestError> {
        let b = self.initializer(node, 1)?;
        let [k, n] = dims2(b, node)?;
        let weights = b.floats()?.to_vec();

        // Fuse `MatMul -> Add(bias)` when the Add consumes this output and
        // an initializer of the right length.
        let fused_add = next.filter(|add| {
            add.op_type == "Add"
                && add.inputs.len() == 2
                && node.outputs.first().is_some_and(|out| {
                    let other = if add.inputs[0] == *out {
                        Some(&add.inputs[1])
                    } else if add.inputs[1] == *out {
                        Some(&add.inputs[0])
                    } else {
                        None
                    };
                    other.is_some_and(|name| {
                        self.graph
                            .initializer(name)
                            .is_some_and(|t| t.volume() == n)
                    })
                })
        });
        let (bias, consumed, chain_node) = match fused_add {
            Some(add) => {
                let out = node.outputs.first().expect("checked above");
                let bias_name = if add.inputs[0] == *out {
                    &add.inputs[1]
                } else {
                    &add.inputs[0]
                };
                let t = self.graph.initializer(bias_name).expect("checked above");
                (t.floats()?.to_vec(), 2, add)
            }
            None => (vec![0.0; n], 1, node),
        };
        let layer = fc_layer(node, k, n, weights, bias, Activation::Identity)?;
        self.push(chain_node, layer)?;
        Ok(consumed)
    }

    fn lower_conv(&self, node: &NodeProto) -> Result<Layer, IngestError> {
        if node.attr_i("group", 1) != 1 {
            return Err(unsupported(node, "grouped convolution"));
        }
        if node.attr_ints("dilations").iter().any(|&d| d != 1) {
            return Err(unsupported(node, "dilated convolution"));
        }
        if let Some(auto) = node.attr("auto_pad").and_then(|a| a.s.as_deref()) {
            if !auto.is_empty() && auto != "NOTSET" {
                return Err(unsupported(node, "auto_pad"));
            }
        }
        let w = self.initializer(node, 1)?;
        if w.dims.len() != 4 {
            return Err(unsupported(node, "only 2D convolution is supported"));
        }
        let [m, c, kh, kw] = [
            w.dims[0] as usize,
            w.dims[1] as usize,
            w.dims[2] as usize,
            w.dims[3] as usize,
        ];
        let kernel = node.attr_ints("kernel_shape");
        if !kernel.is_empty() && kernel != [kh as i64, kw as i64] {
            return Err(IngestError::Shape {
                context: format!(
                    "Conv {:?} kernel_shape {kernel:?} disagrees with weights [{kh}, {kw}]",
                    node.display_name()
                ),
            });
        }
        let stride = uniform_attr(node, "strides", 1, "anisotropic strides")?;
        let pad = symmetric_pad(node)?;
        if pad.0 != pad.1 {
            return Err(unsupported(node, "different vertical/horizontal padding"));
        }
        let spec = Conv2dSpec {
            in_channels: c,
            out_channels: m,
            kh,
            kw,
            stride,
            pad: pad.0,
        };
        // ONNX Conv weights are [M, C, kH, kW] — exactly the native layout.
        let weights = Tensor::from_vec(spec.weight_shape(), w.floats()?.to_vec())
            .map_err(|e| shape_err(node, &format!("conv weights: {e}")))?;
        let bias = match node.inputs.get(2).filter(|b| !b.is_empty()) {
            Some(_) => {
                let b = self.initializer(node, 2)?;
                if b.volume() != m {
                    return Err(shape_err(
                        node,
                        &format!("conv bias has {} elements, expected {m}", b.volume()),
                    ));
                }
                Tensor::from_vec(Shape::d1(m), b.floats()?.to_vec())
                    .map_err(|e| shape_err(node, &format!("conv bias: {e}")))?
            }
            None => Tensor::from_vec(Shape::d1(m), vec![0.0; m])
                .map_err(|e| shape_err(node, &format!("conv bias: {e}")))?,
        };
        Ok(Layer::Conv2d(Conv2dLayer::new(
            spec,
            weights,
            bias,
            Activation::Identity,
        )?))
    }

    fn lower_lstm(&self, node: &NodeProto) -> Result<Layer, IngestError> {
        let direction = node
            .attr("direction")
            .and_then(|a| a.s.clone())
            .unwrap_or_else(|| "forward".to_string());
        let num_dirs = match direction.as_str() {
            "forward" => 1,
            "bidirectional" => 2,
            other => return Err(unsupported(node, &format!("direction {other:?}"))),
        };
        if let Some(acts) = node.attr("activations") {
            let default: Vec<String> = ["Sigmoid", "Tanh", "Tanh"]
                .iter()
                .cycle()
                .take(3 * num_dirs)
                .map(|s| s.to_string())
                .collect();
            if acts.strings != default {
                return Err(unsupported(node, "non-default LSTM activations"));
            }
        }
        // Optional inputs 4..7 (sequence_lens, initial_h, initial_c, P)
        // must be omitted — the engine streams frames with implicit state.
        for (idx, what) in [
            (4, "sequence_lens"),
            (5, "initial_h"),
            (6, "initial_c"),
            (7, "peepholes"),
        ] {
            if node.inputs.get(idx).is_some_and(|n| !n.is_empty()) {
                return Err(unsupported(node, &format!("LSTM input {what}")));
            }
        }
        let w = self.initializer(node, 1)?;
        let r = self.initializer(node, 2)?;
        let b = node
            .inputs
            .get(3)
            .filter(|n| !n.is_empty())
            .map(|_| self.initializer(node, 3))
            .transpose()?;
        let [wd0, w4h, n_in] = dims3(w, node)?;
        let [rd0, r4h, hidden] = dims3(r, node)?;
        if wd0 != num_dirs || rd0 != num_dirs {
            return Err(shape_err(node, "LSTM weight direction count mismatch"));
        }
        if w4h != 4 * hidden || r4h != 4 * hidden {
            return Err(shape_err(node, "LSTM gate dimension mismatch"));
        }
        let attr_hidden = node.attr_i("hidden_size", hidden as i64);
        if attr_hidden != hidden as i64 {
            return Err(shape_err(node, "hidden_size attribute disagrees with R"));
        }
        let mut cells = Vec::with_capacity(num_dirs);
        for dir in 0..num_dirs {
            cells.push(build_lstm_cell(node, w, r, b, dir, n_in, hidden)?);
        }
        let mut cells = cells.into_iter();
        if num_dirs == 1 {
            Ok(Layer::Lstm(cells.next().expect("one cell")))
        } else {
            let fwd = cells.next().expect("two cells");
            let bwd = cells.next().expect("two cells");
            Ok(Layer::BiLstm(BiLstmLayer::new(fwd, bwd)?))
        }
    }
}

/// The single non-initializer graph input.
fn graph_data_input(graph: &GraphProto) -> Result<String, IngestError> {
    let mut data: Vec<&str> = graph
        .inputs
        .iter()
        .filter(|v| graph.initializer(&v.name).is_none())
        .map(|v| v.name.as_str())
        .collect();
    match (data.len(), data.pop()) {
        (1, Some(name)) => Ok(name.to_string()),
        (0, _) => Err(IngestError::MissingField {
            context: "graph has no non-initializer input".into(),
        }),
        _ => Err(IngestError::NotSequential {
            context: format!("graph has {} data inputs, need exactly 1", data.len() + 1),
        }),
    }
}

/// Maps the declared ONNX input shape onto a frame shape: `[N, F]` -> `d1(F)`,
/// `[N, C, H, W]` -> `d3(C, H, W)`, rank 3 feeding an LSTM -> `d1(last)`,
/// rank 1 -> `d1`. Symbolic dims are only tolerated in the batch position.
fn infer_input_shape(graph: &GraphProto, input: &str) -> Result<Shape, IngestError> {
    let info = graph.shape_of(input).ok_or_else(|| IngestError::Shape {
        context: format!("graph input {input:?} has no declared type"),
    })?;
    let fixed = |dim: Option<i64>, pos: usize| -> Result<usize, IngestError> {
        match dim {
            Some(d) if d > 0 => Ok(d as usize),
            other => Err(IngestError::Shape {
                context: format!(
                    "graph input {input:?} dim {pos} is {other:?}, need a positive constant"
                ),
            }),
        }
    };
    match info.dims.len() {
        1 => Ok(Shape::d1(fixed(info.dims[0], 0)?)),
        2 => Ok(Shape::d1(fixed(info.dims[1], 1)?)),
        3 => {
            // `[seq, batch, input]` feeding an LSTM: the frame is the last
            // axis. Anything else rank-3 is ambiguous.
            let feeds_lstm = graph
                .nodes
                .iter()
                .find(|n| n.inputs.first().is_some_and(|i| i == input))
                .is_some_and(|n| n.op_type == "LSTM");
            if feeds_lstm {
                Ok(Shape::d1(fixed(info.dims[2], 2)?))
            } else {
                Err(IngestError::Shape {
                    context: format!("rank-3 input {input:?} only supported when feeding an LSTM"),
                })
            }
        }
        4 => Ok(Shape::d3(
            fixed(info.dims[1], 1)?,
            fixed(info.dims[2], 2)?,
            fixed(info.dims[3], 3)?,
        )),
        r => Err(IngestError::Shape {
            context: format!("graph input {input:?} has unsupported rank {r}"),
        }),
    }
}

fn unsupported(node: &NodeProto, why: &str) -> IngestError {
    IngestError::UnsupportedOp {
        node: node.display_name(),
        op: node.op_type.clone(),
        why: why.to_string(),
    }
}

fn shape_err(node: &NodeProto, what: &str) -> IngestError {
    IngestError::Shape {
        context: format!("{} {:?}: {what}", node.op_type, node.display_name()),
    }
}

fn dims2(t: &TensorInit, node: &NodeProto) -> Result<[usize; 2], IngestError> {
    match t.dims.as_slice() {
        [a, b] if *a > 0 && *b > 0 => Ok([*a as usize, *b as usize]),
        dims => Err(shape_err(
            node,
            &format!(
                "initializer {:?} has dims {dims:?}, expected rank 2",
                t.name
            ),
        )),
    }
}

fn dims3(t: &TensorInit, node: &NodeProto) -> Result<[usize; 3], IngestError> {
    match t.dims.as_slice() {
        [a, b, c] if *a > 0 && *b > 0 && *c > 0 => Ok([*a as usize, *b as usize, *c as usize]),
        dims => Err(shape_err(
            node,
            &format!(
                "initializer {:?} has dims {dims:?}, expected rank 3",
                t.name
            ),
        )),
    }
}

/// Row-major `[rows, cols]` -> `[cols, rows]`.
fn transpose(data: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    let mut out = vec![0.0; data.len()];
    for r in 0..rows {
        for c in 0..cols {
            out[c * rows + r] = data[r * cols + c];
        }
    }
    out
}

fn fc_layer(
    node: &NodeProto,
    k: usize,
    n: usize,
    weights: Vec<f32>,
    bias: Vec<f32>,
    act: Activation,
) -> Result<Layer, IngestError> {
    let weights = Tensor::from_vec(Shape::d2(k, n), weights)
        .map_err(|e| shape_err(node, &format!("weights: {e}")))?;
    let bias =
        Tensor::from_vec(Shape::d1(n), bias).map_err(|e| shape_err(node, &format!("bias: {e}")))?;
    Ok(Layer::FullyConnected(FullyConnected::new(
        weights, bias, act,
    )?))
}

/// An int-list attribute whose entries must all be equal (e.g. `strides`).
fn uniform_attr(
    node: &NodeProto,
    name: &str,
    default: usize,
    why: &str,
) -> Result<usize, IngestError> {
    let vals = node.attr_ints(name);
    match vals {
        [] => Ok(default),
        [first, rest @ ..] => {
            if rest.iter().any(|v| v != first) || *first < 1 {
                return Err(unsupported(node, why));
            }
            Ok(*first as usize)
        }
    }
}

/// Decodes `pads = [t, l, b, r]` requiring top==bottom and left==right.
fn symmetric_pad(node: &NodeProto) -> Result<(usize, usize), IngestError> {
    match node.attr_ints("pads") {
        [] => Ok((0, 0)),
        [t, l, b, r] => {
            if t != b || l != r || *t < 0 || *l < 0 {
                return Err(unsupported(node, "asymmetric padding"));
            }
            Ok((*t as usize, *l as usize))
        }
        other => Err(unsupported(
            node,
            &format!("pads attribute with {} entries", other.len()),
        )),
    }
}

/// Builds a [`PoolSpec2d`] from MaxPool/AveragePool attributes.
fn pool_spec(node: &NodeProto) -> Result<PoolSpec2d, IngestError> {
    if node.attr_ints("dilations").iter().any(|&d| d != 1) {
        return Err(unsupported(node, "dilated pooling"));
    }
    if let Some(auto) = node.attr("auto_pad").and_then(|a| a.s.as_deref()) {
        if !auto.is_empty() && auto != "NOTSET" {
            return Err(unsupported(node, "auto_pad"));
        }
    }
    let [kh, kw] = match node.attr_ints("kernel_shape") {
        [kh, kw] if *kh > 0 && *kw > 0 => [*kh as usize, *kw as usize],
        other => {
            return Err(unsupported(
                node,
                &format!("kernel_shape {other:?}, need two positive entries"),
            ))
        }
    };
    let (stride_h, stride_w) = match node.attr_ints("strides") {
        [] => (1, 1),
        [sh, sw] if *sh > 0 && *sw > 0 => (*sh as usize, *sw as usize),
        other => {
            return Err(unsupported(
                node,
                &format!("strides {other:?}, need two positive entries"),
            ))
        }
    };
    let (pad_h, pad_w) = symmetric_pad(node)?;
    Ok(PoolSpec2d {
        kh,
        kw,
        stride_h,
        stride_w,
        pad_h,
        pad_w,
        ceil: node.attr_i("ceil_mode", 0) != 0,
    })
}

/// Extracts one direction's gates from ONNX `W`/`R`/`B` and builds a cell.
///
/// ONNX packs gates in `[i, o, f, c]` chunk order; the native cell wants
/// `[i, f, g, o]` with transposed (input-major) weight layout.
fn build_lstm_cell(
    node: &NodeProto,
    w: &TensorInit,
    r: &TensorInit,
    b: Option<&TensorInit>,
    dir: usize,
    n_in: usize,
    hidden: usize,
) -> Result<LstmCell, IngestError> {
    const ONNX_CHUNK_FOR_GATE: [usize; NUM_GATES] = [0, 2, 3, 1];
    let wf = w.floats()?;
    let rf = r.floats()?;
    let w_dir = &wf[dir * 4 * hidden * n_in..(dir + 1) * 4 * hidden * n_in];
    let r_dir = &rf[dir * 4 * hidden * hidden..(dir + 1) * 4 * hidden * hidden];
    let b_dir = match b {
        Some(t) => {
            if t.volume() != 8 * hidden * w.dims[0] as usize {
                return Err(shape_err(node, "LSTM bias must be [num_dirs, 8*hidden]"));
            }
            Some(&t.floats()?[dir * 8 * hidden..(dir + 1) * 8 * hidden])
        }
        None => None,
    };

    let mut w_x: Vec<Tensor> = Vec::with_capacity(NUM_GATES);
    let mut w_h: Vec<Tensor> = Vec::with_capacity(NUM_GATES);
    let mut bias: Vec<Tensor> = Vec::with_capacity(NUM_GATES);
    for &chunk in &ONNX_CHUNK_FOR_GATE {
        let wx_chunk = &w_dir[chunk * hidden * n_in..(chunk + 1) * hidden * n_in];
        w_x.push(
            Tensor::from_vec(Shape::d2(n_in, hidden), transpose(wx_chunk, hidden, n_in))
                .map_err(|e| shape_err(node, &format!("LSTM W: {e}")))?,
        );
        let wh_chunk = &r_dir[chunk * hidden * hidden..(chunk + 1) * hidden * hidden];
        w_h.push(
            Tensor::from_vec(
                Shape::d2(hidden, hidden),
                transpose(wh_chunk, hidden, hidden),
            )
            .map_err(|e| shape_err(node, &format!("LSTM R: {e}")))?,
        );
        let gate_bias = match b_dir {
            Some(bd) => {
                let wb = &bd[chunk * hidden..(chunk + 1) * hidden];
                let rb = &bd[4 * hidden + chunk * hidden..4 * hidden + (chunk + 1) * hidden];
                wb.iter().zip(rb).map(|(a, b)| a + b).collect()
            }
            None => vec![0.0; hidden],
        };
        bias.push(
            Tensor::from_vec(Shape::d1(hidden), gate_bias)
                .map_err(|e| shape_err(node, &format!("LSTM B: {e}")))?,
        );
    }
    let into4 = |v: Vec<Tensor>| -> [Tensor; NUM_GATES] {
        v.try_into().expect("exactly NUM_GATES tensors")
    };
    Ok(LstmCell::new(
        n_in,
        hidden,
        into4(w_x),
        into4(w_h),
        into4(bias),
    )?)
}

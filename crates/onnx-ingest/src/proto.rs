//! ONNX message walkers over the wire reader.
//!
//! Field numbers follow `onnx.proto3`: `ModelProto.graph = 7`;
//! `GraphProto` node=1/name=2/initializer=5/input=11/output=12/
//! value_info=13; `NodeProto` input=1/output=2/name=3/op_type=4/
//! attribute=5; `AttributeProto` name=1/f=2/i=3/s=4/floats=7/ints=8;
//! `TensorProto` dims=1/data_type=2/float_data=4/int32_data=5/
//! int64_data=7/name=8/raw_data=9; `ValueInfoProto` name=1/type=2 with
//! `TypeProto.tensor_type.shape.dim.{dim_value,dim_param}`. Unknown fields
//! are skipped, so models carrying doc strings, metadata or opset imports
//! parse fine.

use crate::wire::{Reader, WireType};
use crate::IngestError;

/// `onnx.TensorProto.DataType.FLOAT`.
pub const DTYPE_FLOAT: i64 = 1;
/// `onnx.TensorProto.DataType.INT32`.
pub const DTYPE_INT32: i64 = 6;
/// `onnx.TensorProto.DataType.INT64`.
pub const DTYPE_INT64: i64 = 7;

/// Decoded initializer payload.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorData {
    /// 32-bit floats (weights, biases).
    F32(Vec<f32>),
    /// 64-bit ints (shape operands of `Reshape` and friends).
    I64(Vec<i64>),
}

/// One `TensorProto` initializer.
#[derive(Debug, Clone)]
pub struct TensorInit {
    /// Tensor name (graph-unique).
    pub name: String,
    /// Declared dimensions.
    pub dims: Vec<i64>,
    /// Decoded payload (raw_data or the typed repeated fields).
    pub data: TensorData,
}

impl TensorInit {
    /// The float payload.
    ///
    /// # Errors
    ///
    /// Returns [`IngestError::Shape`] for non-float initializers.
    pub fn floats(&self) -> Result<&[f32], IngestError> {
        match &self.data {
            TensorData::F32(v) => Ok(v),
            TensorData::I64(_) => Err(IngestError::Shape {
                context: format!("initializer {:?} is int64, expected float", self.name),
            }),
        }
    }

    /// Element count implied by `dims`.
    pub fn volume(&self) -> usize {
        self.dims.iter().map(|&d| d.max(0) as usize).product()
    }
}

/// One attribute of a node. ONNX tags attributes with a type enum; we keep
/// whichever payload fields were present and let the lowering pick.
#[derive(Debug, Clone, Default)]
pub struct Attribute {
    /// Attribute name (`alpha`, `strides`, ...).
    pub name: String,
    /// `f =` payload.
    pub f: Option<f32>,
    /// `i =` payload.
    pub i: Option<i64>,
    /// `s =` payload (UTF-8 decoded).
    pub s: Option<String>,
    /// `floats =` payload.
    pub floats: Vec<f32>,
    /// `ints =` payload.
    pub ints: Vec<i64>,
    /// `strings =` payload (UTF-8 decoded).
    pub strings: Vec<String>,
}

/// One graph node.
#[derive(Debug, Clone, Default)]
pub struct NodeProto {
    /// Node name (may be empty).
    pub name: String,
    /// Operator (`Gemm`, `Conv`, ...).
    pub op_type: String,
    /// Input tensor names ("" marks an omitted optional input).
    pub inputs: Vec<String>,
    /// Output tensor names.
    pub outputs: Vec<String>,
    /// Attributes.
    pub attributes: Vec<Attribute>,
}

impl NodeProto {
    /// Looks up an attribute by name.
    pub fn attr(&self, name: &str) -> Option<&Attribute> {
        self.attributes.iter().find(|a| a.name == name)
    }

    /// Integer attribute with a default.
    pub fn attr_i(&self, name: &str, default: i64) -> i64 {
        self.attr(name).and_then(|a| a.i).unwrap_or(default)
    }

    /// Float attribute with a default.
    pub fn attr_f(&self, name: &str, default: f32) -> f32 {
        self.attr(name).and_then(|a| a.f).unwrap_or(default)
    }

    /// Int-list attribute ([] when absent).
    pub fn attr_ints(&self, name: &str) -> &[i64] {
        self.attr(name).map_or(&[], |a| a.ints.as_slice())
    }

    /// A display name for diagnostics: the node name, or `op(first_output)`.
    pub fn display_name(&self) -> String {
        if !self.name.is_empty() {
            return self.name.clone();
        }
        let out = self.outputs.first().map_or("?", String::as_str);
        format!("{}({out})", self.op_type)
    }
}

/// A `ValueInfoProto`: a named tensor with an optional static shape.
#[derive(Debug, Clone, Default)]
pub struct ValueInfo {
    /// Tensor name.
    pub name: String,
    /// One entry per dimension; `None` for symbolic (`dim_param`) dims.
    pub dims: Vec<Option<i64>>,
}

/// The flattened `GraphProto`.
#[derive(Debug, Clone, Default)]
pub struct GraphProto {
    /// Graph name.
    pub name: String,
    /// Nodes in file order (ONNX requires topological order).
    pub nodes: Vec<NodeProto>,
    /// Weight/shape initializers.
    pub initializers: Vec<TensorInit>,
    /// Declared inputs (includes initializers in many exporters).
    pub inputs: Vec<ValueInfo>,
    /// Declared outputs.
    pub outputs: Vec<ValueInfo>,
    /// Intermediate value shapes, when the exporter ran shape inference.
    pub value_infos: Vec<ValueInfo>,
}

impl GraphProto {
    /// Looks up an initializer by name.
    pub fn initializer(&self, name: &str) -> Option<&TensorInit> {
        self.initializers.iter().find(|t| t.name == name)
    }

    /// Static shape knowledge for a tensor name, searched across inputs,
    /// outputs and value_info.
    pub fn shape_of(&self, name: &str) -> Option<&ValueInfo> {
        self.inputs
            .iter()
            .chain(self.value_infos.iter())
            .chain(self.outputs.iter())
            .find(|v| v.name == name)
    }
}

/// The top-level `ModelProto` (only the pieces lowering needs).
#[derive(Debug, Clone, Default)]
pub struct ModelProto {
    /// IR version (informational).
    pub ir_version: i64,
    /// The graph.
    pub graph: GraphProto,
}

/// Parses a serialized `ModelProto`.
///
/// # Errors
///
/// Returns [`IngestError::Malformed`] (with a byte offset) on wire-format
/// violations and [`IngestError::MissingField`] when the model has no graph.
pub fn parse_model(bytes: &[u8]) -> Result<ModelProto, IngestError> {
    let mut model = ModelProto::default();
    let mut has_graph = false;
    let mut r = Reader::new(bytes);
    while !r.eof() {
        let (field, wt) = r.key()?;
        match field {
            1 if wt == WireType::Varint => model.ir_version = r.varint()? as i64,
            7 if wt == WireType::LengthDelimited => {
                model.graph = parse_graph(&mut r.message()?)?;
                has_graph = true;
            }
            _ => r.skip(wt)?,
        }
    }
    if !has_graph {
        return Err(IngestError::MissingField {
            context: "ModelProto.graph".into(),
        });
    }
    Ok(model)
}

fn parse_graph(r: &mut Reader<'_>) -> Result<GraphProto, IngestError> {
    let mut g = GraphProto::default();
    while !r.eof() {
        let (field, wt) = r.key()?;
        match field {
            1 if wt == WireType::LengthDelimited => g.nodes.push(parse_node(&mut r.message()?)?),
            2 if wt == WireType::LengthDelimited => g.name = r.string()?,
            5 if wt == WireType::LengthDelimited => {
                g.initializers.push(parse_tensor(&mut r.message()?)?);
            }
            11 if wt == WireType::LengthDelimited => {
                g.inputs.push(parse_value_info(&mut r.message()?)?);
            }
            12 if wt == WireType::LengthDelimited => {
                g.outputs.push(parse_value_info(&mut r.message()?)?);
            }
            13 if wt == WireType::LengthDelimited => {
                g.value_infos.push(parse_value_info(&mut r.message()?)?);
            }
            _ => r.skip(wt)?,
        }
    }
    Ok(g)
}

fn parse_node(r: &mut Reader<'_>) -> Result<NodeProto, IngestError> {
    let mut n = NodeProto::default();
    while !r.eof() {
        let (field, wt) = r.key()?;
        match field {
            1 if wt == WireType::LengthDelimited => n.inputs.push(r.string()?),
            2 if wt == WireType::LengthDelimited => n.outputs.push(r.string()?),
            3 if wt == WireType::LengthDelimited => n.name = r.string()?,
            4 if wt == WireType::LengthDelimited => n.op_type = r.string()?,
            5 if wt == WireType::LengthDelimited => {
                n.attributes.push(parse_attribute(&mut r.message()?)?);
            }
            _ => r.skip(wt)?,
        }
    }
    Ok(n)
}

fn parse_attribute(r: &mut Reader<'_>) -> Result<Attribute, IngestError> {
    let mut a = Attribute::default();
    while !r.eof() {
        let (field, wt) = r.key()?;
        match field {
            1 if wt == WireType::LengthDelimited => a.name = r.string()?,
            2 if wt == WireType::Fixed32 => a.f = Some(f32::from_bits(r.fixed32()?)),
            3 if wt == WireType::Varint => a.i = Some(r.varint()? as i64),
            4 if wt == WireType::LengthDelimited => a.s = Some(r.string()?),
            7 => r.repeated_f32(wt, &mut a.floats)?,
            8 => r.repeated_i64(wt, &mut a.ints)?,
            9 if wt == WireType::LengthDelimited => a.strings.push(r.string()?),
            _ => r.skip(wt)?,
        }
    }
    Ok(a)
}

fn parse_tensor(r: &mut Reader<'_>) -> Result<TensorInit, IngestError> {
    let start = r.offset();
    let mut name = String::new();
    let mut dims: Vec<i64> = Vec::new();
    let mut data_type: i64 = 0;
    let mut floats: Vec<f32> = Vec::new();
    let mut i32s: Vec<i64> = Vec::new();
    let mut i64s: Vec<i64> = Vec::new();
    let mut raw: Option<&[u8]> = None;
    while !r.eof() {
        let (field, wt) = r.key()?;
        match field {
            1 => r.repeated_i64(wt, &mut dims)?,
            2 if wt == WireType::Varint => data_type = r.varint()? as i64,
            4 => r.repeated_f32(wt, &mut floats)?,
            5 => r.repeated_i64(wt, &mut i32s)?,
            7 => r.repeated_i64(wt, &mut i64s)?,
            8 if wt == WireType::LengthDelimited => name = r.string()?,
            9 if wt == WireType::LengthDelimited => raw = Some(r.bytes()?),
            _ => r.skip(wt)?,
        }
    }
    let data = match data_type {
        DTYPE_FLOAT => {
            if let Some(raw) = raw {
                if !raw.len().is_multiple_of(4) {
                    return Err(IngestError::Malformed {
                        offset: start,
                        what: format!("float raw_data of {} bytes in {name:?}", raw.len()),
                    });
                }
                TensorData::F32(
                    raw.chunks_exact(4)
                        .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
                        .collect(),
                )
            } else {
                TensorData::F32(floats)
            }
        }
        DTYPE_INT64 => {
            if let Some(raw) = raw {
                if !raw.len().is_multiple_of(8) {
                    return Err(IngestError::Malformed {
                        offset: start,
                        what: format!("int64 raw_data of {} bytes in {name:?}", raw.len()),
                    });
                }
                TensorData::I64(
                    raw.chunks_exact(8)
                        .map(|c| i64::from_le_bytes(c.try_into().expect("8 bytes")))
                        .collect(),
                )
            } else {
                TensorData::I64(i64s)
            }
        }
        DTYPE_INT32 => {
            if let Some(raw) = raw {
                if !raw.len().is_multiple_of(4) {
                    return Err(IngestError::Malformed {
                        offset: start,
                        what: format!("int32 raw_data of {} bytes in {name:?}", raw.len()),
                    });
                }
                TensorData::I64(
                    raw.chunks_exact(4)
                        .map(|c| i64::from(i32::from_le_bytes(c.try_into().expect("4 bytes"))))
                        .collect(),
                )
            } else {
                TensorData::I64(i32s)
            }
        }
        other => {
            return Err(IngestError::UnsupportedOp {
                node: name,
                op: format!("initializer data_type {other}"),
                why: "only FLOAT, INT32 and INT64 initializers are supported".into(),
            })
        }
    };
    let t = TensorInit { name, dims, data };
    let len = match &t.data {
        TensorData::F32(v) => v.len(),
        TensorData::I64(v) => v.len(),
    };
    if len != t.volume() {
        return Err(IngestError::Shape {
            context: format!(
                "initializer {:?} declares dims {:?} ({} elements) but carries {len}",
                t.name,
                t.dims,
                t.volume()
            ),
        });
    }
    Ok(t)
}

fn parse_value_info(r: &mut Reader<'_>) -> Result<ValueInfo, IngestError> {
    let mut v = ValueInfo::default();
    while !r.eof() {
        let (field, wt) = r.key()?;
        match field {
            1 if wt == WireType::LengthDelimited => v.name = r.string()?,
            // TypeProto -> tensor_type (1) -> shape (2) -> dim (1).
            2 if wt == WireType::LengthDelimited => {
                let mut ty = r.message()?;
                while !ty.eof() {
                    let (f2, wt2) = ty.key()?;
                    if f2 == 1 && wt2 == WireType::LengthDelimited {
                        let mut tt = ty.message()?;
                        while !tt.eof() {
                            let (f3, wt3) = tt.key()?;
                            if f3 == 2 && wt3 == WireType::LengthDelimited {
                                let mut shape = tt.message()?;
                                while !shape.eof() {
                                    let (f4, wt4) = shape.key()?;
                                    if f4 == 1 && wt4 == WireType::LengthDelimited {
                                        v.dims.push(parse_dim(&mut shape.message()?)?);
                                    } else {
                                        shape.skip(wt4)?;
                                    }
                                }
                            } else {
                                tt.skip(wt3)?;
                            }
                        }
                    } else {
                        ty.skip(wt2)?;
                    }
                }
            }
            _ => r.skip(wt)?,
        }
    }
    Ok(v)
}

fn parse_dim(r: &mut Reader<'_>) -> Result<Option<i64>, IngestError> {
    let mut value = None;
    while !r.eof() {
        let (field, wt) = r.key()?;
        match field {
            1 if wt == WireType::Varint => value = Some(r.varint()? as i64),
            _ => r.skip(wt)?,
        }
    }
    Ok(value)
}

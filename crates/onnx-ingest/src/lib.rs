//! Dependency-free ONNX ingestion for reuse-dnn.
//!
//! Pretrained models ship as ONNX protobuf files. This crate reads them
//! without a protobuf dependency — [`wire`] hand-rolls the varint /
//! length-delimited field walking, [`proto`] decodes the handful of ONNX
//! messages that matter (`ModelProto`, `GraphProto`, `NodeProto`,
//! `TensorProto`, `ValueInfoProto`), and [`lower()`] turns a sequential graph
//! of `Gemm` / `MatMul`(+`Add`) / `Conv` / `LSTM` / activation nodes into a
//! [`reuse_nn::Network`] ready for `CompiledModel`.
//!
//! Ops the reuse engine cannot accelerate but *can* execute (`MaxPool`,
//! `AveragePool`, `GlobalAveragePool`, `Softmax`, standalone activations)
//! lower to recompute-always passthrough layers: they charge full MACs,
//! record zero reuse and never join signature-cache or policy decisions, so
//! a partially supported graph still serves end to end. Ops we cannot even
//! execute correctly (attention blocks, unknown operators) are a hard
//! [`IngestError::UnsupportedOp`] — silently wrong outputs would be worse
//! than no outputs.
//!
//! ```no_run
//! let bytes = std::fs::read("model.onnx").expect("read model");
//! let lowered = reuse_onnx_ingest::ingest(&bytes).expect("lower model");
//! println!("{} layers", lowered.network.layers().len());
//! ```

pub mod fixture;
pub mod lower;
pub mod proto;
pub mod wire;

pub use lower::{lower, LoweredModel};
pub use proto::{parse_model, GraphProto, ModelProto, NodeProto, TensorInit};

/// Everything that can go wrong between raw bytes and a runnable network.
#[derive(Debug)]
pub enum IngestError {
    /// The bytes violate the protobuf wire format.
    Malformed {
        /// Absolute byte offset of the violation.
        offset: usize,
        /// What was malformed.
        what: String,
    },
    /// A required field is absent.
    MissingField {
        /// Which field, and where.
        context: String,
    },
    /// A node uses an operator (or operator configuration) we can neither
    /// lower nor execute.
    UnsupportedOp {
        /// Node display name.
        node: String,
        /// Operator type.
        op: String,
        /// Why it cannot be lowered.
        why: String,
    },
    /// The graph is not a single sequential chain.
    NotSequential {
        /// What broke the chain.
        context: String,
    },
    /// Declared shapes are inconsistent or missing.
    Shape {
        /// Which tensor/node, and how.
        context: String,
    },
    /// Network construction rejected the lowered layers.
    Nn(reuse_nn::NnError),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Malformed { offset, what } => {
                write!(f, "malformed ONNX at byte {offset}: {what}")
            }
            IngestError::MissingField { context } => {
                write!(f, "missing field: {context}")
            }
            IngestError::UnsupportedOp { node, op, why } => {
                write!(f, "unsupported op {op} at node {node:?}: {why}")
            }
            IngestError::NotSequential { context } => {
                write!(f, "graph is not a sequential chain: {context}")
            }
            IngestError::Shape { context } => write!(f, "shape error: {context}"),
            IngestError::Nn(e) => write!(f, "network construction failed: {e}"),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<reuse_nn::NnError> for IngestError {
    fn from(e: reuse_nn::NnError) -> Self {
        IngestError::Nn(e)
    }
}

/// Parses and lowers a serialized ONNX model in one step.
///
/// # Errors
///
/// Propagates every [`IngestError`] from [`parse_model`] and [`lower()`].
pub fn ingest(bytes: &[u8]) -> Result<LoweredModel, IngestError> {
    lower(&parse_model(bytes)?)
}

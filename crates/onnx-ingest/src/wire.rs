//! Protobuf wire-format primitives: a varint/length-delimited field reader
//! and the tiny writer the test fixtures are generated with.
//!
//! ONNX models are protobuf messages, but the reader here knows nothing
//! about ONNX — it walks the three wire types the format actually uses
//! (varint, 64/32-bit fixed, length-delimited) and leaves field semantics
//! to [`crate::proto`]. No protobuf dependency, no code generation.

use crate::IngestError;

/// Wire type of a field key (low 3 bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireType {
    /// Base-128 varint.
    Varint,
    /// 8-byte little-endian.
    Fixed64,
    /// Length-prefixed bytes (strings, sub-messages, packed repeats).
    LengthDelimited,
    /// 4-byte little-endian.
    Fixed32,
}

impl WireType {
    fn from_bits(bits: u64, offset: usize) -> Result<Self, IngestError> {
        match bits {
            0 => Ok(WireType::Varint),
            1 => Ok(WireType::Fixed64),
            2 => Ok(WireType::LengthDelimited),
            5 => Ok(WireType::Fixed32),
            other => Err(IngestError::Malformed {
                offset,
                what: format!("wire type {other}"),
            }),
        }
    }
}

/// Cursor over one protobuf message body.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Byte offset of `buf[0]` in the whole file, so nested readers report
    /// absolute error positions.
    base: usize,
}

impl<'a> Reader<'a> {
    /// Reader over a whole message (offsets reported from 0).
    pub fn new(buf: &'a [u8]) -> Self {
        Reader {
            buf,
            pos: 0,
            base: 0,
        }
    }

    fn at(buf: &'a [u8], base: usize) -> Self {
        Reader { buf, pos: 0, base }
    }

    /// Absolute byte offset of the cursor.
    pub fn offset(&self) -> usize {
        self.base + self.pos
    }

    /// Whether the message body is exhausted.
    pub fn eof(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn truncated(&self, what: &str) -> IngestError {
        IngestError::Malformed {
            offset: self.offset(),
            what: format!("truncated {what}"),
        }
    }

    /// Reads one base-128 varint.
    pub fn varint(&mut self) -> Result<u64, IngestError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let Some(&b) = self.buf.get(self.pos) else {
                return Err(self.truncated("varint"));
            };
            self.pos += 1;
            if shift == 63 && b > 1 {
                return Err(IngestError::Malformed {
                    offset: self.offset() - 1,
                    what: "varint overflows 64 bits".into(),
                });
            }
            value |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(IngestError::Malformed {
                    offset: self.offset(),
                    what: "varint longer than 10 bytes".into(),
                });
            }
        }
    }

    /// Reads a field key, returning `(field_number, wire_type)`.
    pub fn key(&mut self) -> Result<(u64, WireType), IngestError> {
        let at = self.offset();
        let key = self.varint()?;
        let field = key >> 3;
        if field == 0 {
            return Err(IngestError::Malformed {
                offset: at,
                what: "field number 0".into(),
            });
        }
        Ok((field, WireType::from_bits(key & 0x7, at)?))
    }

    /// Reads a length-delimited payload and returns a nested reader over it
    /// (absolute offsets preserved).
    pub fn message(&mut self) -> Result<Reader<'a>, IngestError> {
        let bytes = self.bytes()?;
        // `bytes()` advanced past the length prefix; the payload started
        // wherever the cursor is now minus the payload length.
        let start = self.base + self.pos - bytes.len();
        Ok(Reader::at(bytes, start))
    }

    /// Reads a length-delimited payload as raw bytes.
    pub fn bytes(&mut self) -> Result<&'a [u8], IngestError> {
        let len = self.varint()? as usize;
        let Some(slice) = self.buf.get(self.pos..self.pos + len) else {
            return Err(self.truncated("length-delimited field"));
        };
        self.pos += len;
        Ok(slice)
    }

    /// Reads a length-delimited payload as UTF-8 (lossy for safety — ONNX
    /// names are metadata, not data).
    pub fn string(&mut self) -> Result<String, IngestError> {
        Ok(String::from_utf8_lossy(self.bytes()?).into_owned())
    }

    /// Reads a 4-byte little-endian value.
    pub fn fixed32(&mut self) -> Result<u32, IngestError> {
        let Some(slice) = self.buf.get(self.pos..self.pos + 4) else {
            return Err(self.truncated("fixed32"));
        };
        self.pos += 4;
        Ok(u32::from_le_bytes(slice.try_into().expect("4 bytes")))
    }

    /// Reads an 8-byte little-endian value.
    pub fn fixed64(&mut self) -> Result<u64, IngestError> {
        let Some(slice) = self.buf.get(self.pos..self.pos + 8) else {
            return Err(self.truncated("fixed64"));
        };
        self.pos += 8;
        Ok(u64::from_le_bytes(slice.try_into().expect("8 bytes")))
    }

    /// Skips one field of the given wire type.
    pub fn skip(&mut self, wt: WireType) -> Result<(), IngestError> {
        match wt {
            WireType::Varint => {
                self.varint()?;
            }
            WireType::Fixed64 => {
                self.fixed64()?;
            }
            WireType::LengthDelimited => {
                self.bytes()?;
            }
            WireType::Fixed32 => {
                self.fixed32()?;
            }
        }
        Ok(())
    }

    /// Collects a repeated int64 field: packed (length-delimited varint
    /// run) or a single unpacked varint, per the protobuf spec.
    pub fn repeated_i64(&mut self, wt: WireType, out: &mut Vec<i64>) -> Result<(), IngestError> {
        match wt {
            WireType::Varint => out.push(self.varint()? as i64),
            WireType::LengthDelimited => {
                let mut packed = self.message()?;
                while !packed.eof() {
                    out.push(packed.varint()? as i64);
                }
            }
            other => {
                return Err(IngestError::Malformed {
                    offset: self.offset(),
                    what: format!("int64 field with wire type {other:?}"),
                })
            }
        }
        Ok(())
    }

    /// Collects a repeated float field: packed fixed32 run or a single
    /// unpacked fixed32.
    pub fn repeated_f32(&mut self, wt: WireType, out: &mut Vec<f32>) -> Result<(), IngestError> {
        match wt {
            WireType::Fixed32 => out.push(f32::from_bits(self.fixed32()?)),
            WireType::LengthDelimited => {
                let mut packed = self.message()?;
                while !packed.eof() {
                    out.push(f32::from_bits(packed.fixed32()?));
                }
            }
            other => {
                return Err(IngestError::Malformed {
                    offset: self.offset(),
                    what: format!("float field with wire type {other:?}"),
                })
            }
        }
        Ok(())
    }
}

/// Minimal protobuf writer — just enough to emit the ONNX test fixtures.
/// Field semantics stay at the call site; this only knows wire framing.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    fn varint(&mut self, mut v: u64) {
        loop {
            let b = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(b);
                return;
            }
            self.buf.push(b | 0x80);
        }
    }

    fn key(&mut self, field: u64, wt: u8) {
        self.varint(field << 3 | u64::from(wt));
    }

    /// Emits a varint field.
    pub fn field_varint(&mut self, field: u64, v: u64) {
        self.key(field, 0);
        self.varint(v);
    }

    /// Emits a fixed32 field from float bits.
    pub fn field_f32(&mut self, field: u64, v: f32) {
        self.key(field, 5);
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Emits a length-delimited field from raw bytes.
    pub fn field_bytes(&mut self, field: u64, data: &[u8]) {
        self.key(field, 2);
        self.varint(data.len() as u64);
        self.buf.extend_from_slice(data);
    }

    /// Emits a string field.
    pub fn field_str(&mut self, field: u64, s: &str) {
        self.field_bytes(field, s.as_bytes());
    }

    /// Emits a nested message built by `f`.
    pub fn field_message(&mut self, field: u64, f: impl FnOnce(&mut Writer)) {
        let mut nested = Writer::new();
        f(&mut nested);
        self.field_bytes(field, &nested.buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut w = Writer::new();
            w.varint(v);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(r.varint().unwrap(), v);
            assert!(r.eof());
        }
    }

    #[test]
    fn truncated_varint_is_an_error_with_offset() {
        let mut r = Reader::new(&[0x80, 0x80]);
        let err = r.varint().unwrap_err();
        assert!(
            matches!(err, IngestError::Malformed { offset: 2, .. }),
            "{err}"
        );
    }

    #[test]
    fn oversized_varint_rejected() {
        let bytes = [0xff; 11];
        let mut r = Reader::new(&bytes);
        assert!(r.varint().is_err());
    }

    #[test]
    fn field_walk_skips_unknown() {
        let mut w = Writer::new();
        w.field_varint(1, 42);
        w.field_str(2, "hello");
        w.field_f32(3, 1.5);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let mut seen = Vec::new();
        while !r.eof() {
            let (field, wt) = r.key().unwrap();
            if field == 2 {
                seen.push(r.string().unwrap());
            } else {
                r.skip(wt).unwrap();
            }
        }
        assert_eq!(seen, ["hello"]);
    }

    #[test]
    fn nested_message_offsets_are_absolute() {
        let mut w = Writer::new();
        w.field_message(7, |g| g.field_varint(1, 5));
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let (field, _) = r.key().unwrap();
        assert_eq!(field, 7);
        let nested = r.message().unwrap();
        assert!(nested.offset() >= 2, "payload offset counts outer framing");
    }

    #[test]
    fn packed_and_unpacked_i64() {
        // Packed: field 1 length-delimited [1, 300]; unpacked: field 1 varint 7.
        let mut w = Writer::new();
        w.field_message(1, |p| {
            p.varint(1);
            p.varint(300);
        });
        w.field_varint(1, 7);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let mut vals = Vec::new();
        while !r.eof() {
            let (_, wt) = r.key().unwrap();
            r.repeated_i64(wt, &mut vals).unwrap();
        }
        assert_eq!(vals, [1, 300, 7]);
    }
}

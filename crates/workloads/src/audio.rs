//! Synthetic speech-feature streams.
//!
//! Speech is quasi-stationary over ~10 ms frames (paper Fig. 1): feature
//! vectors evolve smoothly within a phoneme and jump at phoneme boundaries.
//! [`SpeechStream`] models this as a piecewise Ornstein-Uhlenbeck process:
//! every `phone_len` frames a new random target vector is drawn, and
//! between jumps features relax toward the target with small innovations.
//!
//! For the Kaldi MLP the DNN input is a *sliding window* of `window`
//! consecutive frames, so two consecutive DNN executions share all but one
//! frame — the second driver of similarity the paper identifies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic stream of synthetic speech feature frames.
#[derive(Debug, Clone)]
pub struct SpeechStream {
    rng: StdRng,
    features: usize,
    /// Frames per synthetic phoneme segment.
    phone_len: usize,
    /// Relaxation rate toward the segment target in `(0, 1]`.
    relax: f32,
    /// Innovation noise amplitude.
    noise: f32,
    state: Vec<f32>,
    target: Vec<f32>,
    frame_index: usize,
}

impl SpeechStream {
    /// Creates a stream of `features`-dimensional frames.
    pub fn new(features: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let state: Vec<f32> = (0..features).map(|_| rng.gen_range(-0.5..0.5)).collect();
        let target: Vec<f32> = (0..features).map(|_| rng.gen_range(-1.0..1.0)).collect();
        SpeechStream {
            rng,
            features,
            phone_len: 8,
            relax: 0.25,
            noise: 0.02,
            state,
            target,
            frame_index: 0,
        }
    }

    /// Overrides the phoneme segment length in frames.
    pub fn phone_len(mut self, frames: usize) -> Self {
        self.phone_len = frames.max(1);
        self
    }

    /// Overrides the innovation noise amplitude (higher ⇒ less similarity).
    pub fn noise(mut self, noise: f32) -> Self {
        self.noise = noise;
        self
    }

    /// Overrides the relaxation rate toward the segment target (higher ⇒
    /// faster per-frame drift ⇒ less similarity).
    pub fn relax(mut self, relax: f32) -> Self {
        self.relax = relax.clamp(0.0, 1.0);
        self
    }

    /// Number of features per frame.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Produces the next frame.
    pub fn next_frame(&mut self) -> Vec<f32> {
        if self.frame_index > 0 && self.frame_index.is_multiple_of(self.phone_len) {
            // Phoneme boundary: new target.
            for t in &mut self.target {
                *t = self.rng.gen_range(-1.0..1.0);
            }
        }
        self.frame_index += 1;
        for (s, &t) in self.state.iter_mut().zip(self.target.iter()) {
            let innovation: f32 = self.rng.gen_range(-1.0f32..1.0) * self.noise;
            *s += self.relax * (t - *s) + innovation;
            *s = s.clamp(-1.5, 1.5);
        }
        self.state.clone()
    }

    /// Produces `n` consecutive frames.
    pub fn frames(&mut self, n: usize) -> Vec<Vec<f32>> {
        (0..n).map(|_| self.next_frame()).collect()
    }
}

/// Builds sliding-window DNN inputs from a frame sequence: execution `t`
/// sees frames `[t, t + window)` concatenated. Returns
/// `frames.len() - window + 1` inputs.
///
/// # Panics
///
/// Panics if `window` is zero or larger than the sequence.
pub fn sliding_windows(frames: &[Vec<f32>], window: usize) -> Vec<Vec<f32>> {
    assert!(
        window > 0 && window <= frames.len(),
        "window must fit the sequence"
    );
    frames
        .windows(window)
        .map(|w| w.iter().flat_map(|f| f.iter().copied()).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic() {
        let mut a = SpeechStream::new(40, 7);
        let mut b = SpeechStream::new(40, 7);
        assert_eq!(a.frames(20), b.frames(20));
    }

    #[test]
    fn consecutive_frames_are_similar() {
        let mut s = SpeechStream::new(40, 1);
        let frames = s.frames(100);
        let mut total_rd = 0.0f64;
        for pair in frames.windows(2) {
            let dist: f32 = pair[0]
                .iter()
                .zip(pair[1].iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
                .sqrt();
            let mag: f32 = pair[0].iter().map(|v| v * v).sum::<f32>().sqrt();
            total_rd += (dist / mag.max(1e-6)) as f64;
        }
        let mean_rd = total_rd / 99.0;
        // The paper's Fig. 4 shows 5-25% relative differences.
        assert!(mean_rd < 0.5, "mean relative difference {mean_rd}");
        assert!(mean_rd > 0.005, "frames should not be constant");
    }

    #[test]
    fn phoneme_jumps_change_targets() {
        let mut quick = SpeechStream::new(8, 3).phone_len(2);
        let mut slow = SpeechStream::new(8, 3).phone_len(1000);
        let fq = quick.frames(60);
        let fs = slow.frames(60);
        let var = |fs: &[Vec<f32>]| -> f32 {
            let n = fs.len() as f32;
            let mean: Vec<f32> = (0..8)
                .map(|i| fs.iter().map(|f| f[i]).sum::<f32>() / n)
                .collect();
            fs.iter()
                .map(|f| {
                    f.iter()
                        .zip(&mean)
                        .map(|(a, m)| (a - m) * (a - m))
                        .sum::<f32>()
                })
                .sum::<f32>()
                / n
        };
        assert!(var(&fq) > var(&fs), "frequent jumps should add variance");
    }

    #[test]
    fn sliding_windows_overlap() {
        let frames = vec![vec![1.0], vec![2.0], vec![3.0], vec![4.0]];
        let wins = sliding_windows(&frames, 3);
        assert_eq!(wins.len(), 2);
        assert_eq!(wins[0], vec![1.0, 2.0, 3.0]);
        assert_eq!(wins[1], vec![2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "window must fit")]
    fn oversized_window_panics() {
        sliding_windows(&[vec![1.0]], 2);
    }

    #[test]
    fn frames_stay_bounded() {
        let mut s = SpeechStream::new(16, 9).noise(0.1);
        for f in s.frames(500) {
            assert!(f.iter().all(|v| v.abs() <= 1.5));
        }
    }
}

//! The AutoPilot self-driving CNN (paper Table I, 6 MB).
//!
//! NVIDIA's end-to-end steering network: five convolutions over a 3×66×200
//! dashcam frame (5×5 stride 2, then 3×3 stride 1), five FC layers, one
//! steering output.
//!
//! Reuse configuration (paper Section III): 32 clusters on every layer
//! except the single-output FC5.

use reuse_core::ReuseConfig;
use reuse_nn::{Activation, Network, NetworkBuilder, NnError};
use reuse_tensor::Shape;

use crate::Scale;

/// Input frame height at full scale.
pub const HEIGHT: usize = 66;
/// Input frame width at full scale.
pub const WIDTH: usize = 200;

/// Input frame height/width at the given scale.
pub fn frame_dims(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Full => (HEIGHT, WIDTH),
        Scale::Small => (HEIGHT, WIDTH), // already small enough
        Scale::Tiny => (34, 100),
    }
}

/// Builds the AutoPilot CNN at a given scale.
///
/// # Errors
///
/// Propagates builder errors (cannot occur for the fixed geometries).
pub fn network(scale: Scale) -> Result<Network, NnError> {
    let (h, w) = frame_dims(scale);
    let tiny = matches!(scale, Scale::Tiny);
    let mut b = NetworkBuilder::with_input_shape("autopilot", Shape::d3(3, h, w))
        .seed(0x4155_544F) // "AUTO"
        .conv2d(24, 5, 2, 0, Activation::Relu) // CONV1
        .conv2d(36, 5, 2, 0, Activation::Relu) // CONV2
        .conv2d(48, 5, 2, 0, Activation::Relu); // CONV3
    if !tiny {
        b = b
            .conv2d(64, 3, 1, 0, Activation::Relu) // CONV4
            .conv2d(64, 3, 1, 0, Activation::Relu); // CONV5
    }
    b.flatten()
        .fully_connected(1164, Activation::Relu) // FC1
        .fully_connected(100, Activation::Relu) // FC2
        .fully_connected(50, Activation::Relu) // FC3
        .fully_connected(10, Activation::Relu) // FC4
        .fully_connected(1, Activation::Identity) // FC5: steering angle
        .build()
}

/// The paper's reuse configuration for AutoPilot: 32 clusters, FC5 excluded.
pub fn reuse_config() -> ReuseConfig {
    ReuseConfig::uniform(32).disable_layer("fc5")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_table1() {
        let net = network(Scale::Full).unwrap();
        let dims: Vec<Vec<usize>> = net
            .layer_input_shapes()
            .iter()
            .map(|s| s.dims().to_vec())
            .collect();
        assert_eq!(dims[0], vec![3, 66, 200]); // CONV1 in
        assert_eq!(dims[1], vec![24, 31, 98]); // CONV2 in
        assert_eq!(dims[2], vec![36, 14, 47]); // CONV3 in
        assert_eq!(dims[3], vec![48, 5, 22]); // CONV4 in
        assert_eq!(dims[4], vec![64, 3, 20]); // CONV5 in
                                              // FC1 input = 64 x 1 x 18 = 1152, exactly Table I.
        let fc1_in = net
            .layers()
            .iter()
            .zip(net.layer_input_shapes())
            .find(|((n, _), _)| n == "fc1")
            .map(|(_, s)| s.volume())
            .unwrap();
        assert_eq!(fc1_in, 1152);
        assert_eq!(net.output_shape().dims(), &[1]);
        let mb = net.model_bytes() as f64 / 1e6;
        assert!((3.0..10.0).contains(&mb), "model {mb} MB");
    }

    #[test]
    fn forward_produces_steering_scalar() {
        let net = network(Scale::Tiny).unwrap();
        let (h, w) = frame_dims(Scale::Tiny);
        let out = net.forward_flat(&vec![0.5; 3 * h * w]).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn reuse_config_excludes_only_fc5() {
        let c = reuse_config();
        assert!(c.setting_for("conv1").enabled);
        assert!(c.setting_for("fc4").enabled);
        assert!(!c.setting_for("fc5").enabled);
    }
}

//! The EESEN end-to-end speech-recognition RNN (paper Table I, 42 MB).
//!
//! Five bidirectional LSTM layers (cell dimension 320, so 640 outputs per
//! timestep) over 120-feature frames, followed by a 50-way character
//! classifier.
//!
//! Reuse configuration (paper Section III): 16 clusters on every BiLSTM
//! layer; the small output FC layer is excluded because its potential
//! savings are negligible.

use reuse_core::ReuseConfig;
use reuse_nn::{Activation, Network, NetworkBuilder, NnError};

use crate::Scale;

/// Features per input frame.
pub const FEATURES: usize = 120;

/// Builds the EESEN RNN at a given scale.
///
/// # Errors
///
/// Propagates builder errors (cannot occur for the fixed geometries).
pub fn network(scale: Scale) -> Result<Network, NnError> {
    let (features, cell, chars, layers) = match scale {
        Scale::Full => (FEATURES, 320, 50, 5),
        Scale::Small => (FEATURES, 96, 50, 5),
        Scale::Tiny => (12, 8, 10, 2),
    };
    let mut b = NetworkBuilder::new("eesen", features).seed(0x4545_5345); // "EESE"
    for _ in 0..layers {
        b = b.bilstm(cell);
    }
    b.fully_connected(chars, Activation::Identity).build()
}

/// The paper's reuse configuration for EESEN: 16 clusters, output FC
/// excluded.
pub fn reuse_config() -> ReuseConfig {
    ReuseConfig::uniform(16).disable_layer("fc1")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_table1() {
        let net = network(Scale::Full).unwrap();
        assert!(net.is_recurrent());
        let shapes: Vec<usize> = net
            .layer_input_shapes()
            .iter()
            .map(|s| s.volume())
            .collect();
        assert_eq!(shapes[0], 120); // BiLSTM1 in
        assert_eq!(shapes[1], 640); // BiLSTM2 in
        assert_eq!(shapes[4], 640); // BiLSTM5 in
        assert_eq!(shapes[5], 640); // FC1 in
        assert_eq!(net.output_shape().dims(), &[50]);
        let mb = net.model_bytes() as f64 / 1e6;
        assert!((30.0..55.0).contains(&mb), "model {mb} MB");
    }

    #[test]
    fn tiny_sequence_runs() {
        let net = network(Scale::Tiny).unwrap();
        let frames = vec![vec![0.1f32; 12]; 4];
        let outs = net.forward_sequence(&frames).unwrap();
        assert_eq!(outs.len(), 4);
        assert_eq!(outs[0].len(), 10);
    }

    #[test]
    fn reuse_config_keeps_recurrent_layers() {
        let c = reuse_config();
        assert!(c.setting_for("bilstm1").enabled);
        assert!(!c.setting_for("fc1").enabled);
    }
}

//! The four evaluation workloads of the paper (Table I) plus synthetic
//! temporally-correlated input generators and an accuracy proxy.
//!
//! The paper evaluates:
//!
//! * **Kaldi** — MLP for acoustic scoring (18 MB): 9-frame sliding windows
//!   of 40 speech features; generalized-maxout hidden layers; 3482 senones.
//! * **EESEN** — bidirectional-LSTM RNN for end-to-end speech recognition
//!   (42 MB): 120-feature frames, five BiLSTM layers (cell 320), 50-way
//!   character output.
//! * **C3D** — 3D CNN for video action classification (~300 MB): disjoint
//!   16-frame windows of 112×112 RGB, eight 3×3×3 conv layers, 101 actions.
//! * **AutoPilot** — CNN for self-driving steering (6 MB): 200×66 RGB
//!   dashcam frames, five conv layers, five FC layers, one steering output.
//!
//! We do not have the trained models or their datasets, so (per DESIGN.md)
//! each network is rebuilt with the exact Table I layer geometry and
//! deterministic pseudo-random weights, and each input stream is replaced
//! with a synthetic generator whose *temporal similarity structure* mirrors
//! the real one: overlapping analysis windows for speech, quasi-static
//! scenes with moving content for video. Accuracy is reported as output
//! agreement against the full-precision network ([`accuracy`]).

#![warn(missing_docs)]

pub mod accuracy;
pub mod audio;
mod autopilot;
mod c3d;
pub mod datasets;
mod eesen;
mod kaldi;
pub mod video;
mod workload;

pub use workload::{Scale, Workload, WorkloadKind};

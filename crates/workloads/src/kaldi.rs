//! The Kaldi acoustic-scoring MLP (paper Table I, 18 MB).
//!
//! The network takes a 9-frame window of 40 speech features (360 inputs)
//! and produces likelihoods for 3482 senones. Hidden layers follow Kaldi's
//! generalized-maxout recipe: each 2000-neuron FC layer is reduced to 400
//! values by a group-max of 5 before feeding the next layer, which is why
//! Table I lists FC3-FC6 with input dimension 400.
//!
//! Reuse configuration (paper Section III): 16 clusters; quantization is
//! applied to the last four FC layers (FC3-FC6) — quantizing FC1/FC2 hurts
//! accuracy because their errors propagate through the whole network.

use reuse_core::ReuseConfig;
use reuse_nn::{Activation, Network, NetworkBuilder, NnError};

use crate::Scale;

/// Number of feature frames in the Kaldi input window.
pub const WINDOW: usize = 9;
/// Features per frame.
pub const FEATURES: usize = 40;

/// Builds the Kaldi MLP at a given scale.
///
/// `Scale::Full` reproduces the exact Table I dimensions; smaller scales
/// shrink hidden widths for fast tests while keeping the same topology.
///
/// # Errors
///
/// Propagates builder errors (cannot occur for the fixed geometries).
pub fn network(scale: Scale) -> Result<Network, NnError> {
    // Keep the small scale's ratio of reuse-enabled to reuse-disabled work
    // close to the full model's, so Amdahl fractions (and thus speedups)
    // scale faithfully.
    let (hidden, group, senones) = match scale {
        Scale::Full => (2000, 5, 3482),
        Scale::Small => (1000, 5, 1740),
        Scale::Tiny => (50, 5, 30),
    };
    let reduced = hidden / group;
    NetworkBuilder::new("kaldi", WINDOW * FEATURES)
        .seed(0x4B41_4C44) // "KALD"
        .fully_connected(WINDOW * FEATURES, Activation::Relu) // FC1
        .fully_connected(hidden, Activation::Relu) // FC2
        .group_max(group) // 2000 -> 400
        .fully_connected(hidden, Activation::Relu) // FC3
        .group_max(group)
        .fully_connected(hidden, Activation::Relu) // FC4
        .group_max(group)
        .fully_connected(hidden, Activation::Relu) // FC5
        .group_max(group)
        .fully_connected(senones, Activation::Identity) // FC6
        .build()
        .inspect(|n| {
            debug_assert_eq!(n.layer_input_shapes()[3].volume(), reduced);
        })
}

/// The paper's reuse configuration for Kaldi: 16 clusters, FC1/FC2 excluded.
pub fn reuse_config() -> ReuseConfig {
    ReuseConfig::uniform(16)
        .disable_layer("fc1")
        .disable_layer("fc2")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_table1() {
        let net = network(Scale::Full).unwrap();
        let shapes: Vec<usize> = net
            .layer_input_shapes()
            .iter()
            .map(|s| s.volume())
            .collect();
        // Layers: fc1, fc2, gmax, fc3, gmax, fc4, gmax, fc5, gmax, fc6.
        assert_eq!(shapes[0], 360); // FC1 in
        assert_eq!(shapes[1], 360); // FC2 in
        assert_eq!(shapes[3], 400); // FC3 in
        assert_eq!(shapes[5], 400); // FC4 in
        assert_eq!(shapes[7], 400); // FC5 in
        assert_eq!(shapes[9], 400); // FC6 in
        assert_eq!(net.output_shape().dims(), &[3482]);
        // Model size ~18 MB like the paper.
        let mb = net.model_bytes() as f64 / 1e6;
        assert!((10.0..25.0).contains(&mb), "model {mb} MB");
    }

    #[test]
    fn reuse_config_disables_first_two_layers() {
        let c = reuse_config();
        assert!(!c.setting_for("fc1").enabled);
        assert!(!c.setting_for("fc2").enabled);
        assert!(c.setting_for("fc3").enabled);
        assert_eq!(c.setting_for("fc6").clusters, 16);
    }

    #[test]
    fn tiny_scale_runs_fast() {
        let net = network(Scale::Tiny).unwrap();
        let out = net.forward_flat(&vec![0.1; 360]).unwrap();
        assert_eq!(out.len(), 30);
    }
}

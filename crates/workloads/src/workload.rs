//! The [`Workload`] facade: one handle per evaluated DNN bundling the
//! network, its reuse configuration, its input generator and the
//! accelerator-simulation parameters.

use reuse_core::ReuseConfig;
use reuse_nn::Network;

use crate::{audio, autopilot, c3d, eesen, kaldi, video};

/// Which of the paper's four DNNs (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// MLP for acoustic scoring.
    Kaldi,
    /// Bidirectional-LSTM RNN for speech recognition.
    Eesen,
    /// 3D CNN for video classification.
    C3d,
    /// 2D CNN for self-driving steering.
    AutoPilot,
}

impl WorkloadKind {
    /// All four workloads in the paper's presentation order.
    pub const ALL: [WorkloadKind; 4] = [
        WorkloadKind::Kaldi,
        WorkloadKind::Eesen,
        WorkloadKind::C3d,
        WorkloadKind::AutoPilot,
    ];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadKind::Kaldi => "Kaldi",
            WorkloadKind::Eesen => "EESEN",
            WorkloadKind::C3d => "C3D",
            WorkloadKind::AutoPilot => "AutoPilot",
        }
    }
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Model scale: full Table I geometry or reduced variants for tests and
/// quick runs (see DESIGN.md — similarity statistics are driven by temporal
/// correlation and cluster counts, not by spatial size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// Exact Table I dimensions.
    Full,
    /// Reduced dimensions for default benchmark runs.
    #[default]
    Small,
    /// Minimal dimensions for unit tests.
    Tiny,
}

impl Scale {
    /// Parses the `REUSE_SCALE` environment variable (`full`/`small`/`tiny`,
    /// default `small`).
    pub fn from_env() -> Scale {
        match std::env::var("REUSE_SCALE")
            .unwrap_or_default()
            .to_lowercase()
            .as_str()
        {
            "full" => Scale::Full,
            "tiny" => Scale::Tiny,
            _ => Scale::Small,
        }
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Scale::Full => "full",
            Scale::Small => "small",
            Scale::Tiny => "tiny",
        };
        f.write_str(s)
    }
}

/// One evaluation workload: network + reuse configuration + input stream.
#[derive(Debug)]
pub struct Workload {
    kind: WorkloadKind,
    scale: Scale,
    network: Network,
    reuse_config: ReuseConfig,
}

impl Workload {
    /// Builds a workload at the given scale.
    ///
    /// # Panics
    ///
    /// Panics if the fixed network geometry fails to build — impossible for
    /// the shipped configurations (covered by tests).
    pub fn build(kind: WorkloadKind, scale: Scale) -> Self {
        let (network, reuse_config) = match kind {
            WorkloadKind::Kaldi => (kaldi::network(scale), kaldi::reuse_config()),
            WorkloadKind::Eesen => (eesen::network(scale), eesen::reuse_config()),
            WorkloadKind::C3d => (c3d::network(scale), c3d::reuse_config()),
            WorkloadKind::AutoPilot => (autopilot::network(scale), autopilot::reuse_config()),
        };
        let network = network.expect("shipped workload geometries are valid");
        Workload {
            kind,
            scale,
            network,
            reuse_config,
        }
    }

    /// Which DNN this is.
    pub fn kind(&self) -> WorkloadKind {
        self.kind
    }

    /// The scale it was built at.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The paper's reuse configuration for this network.
    pub fn reuse_config(&self) -> &ReuseConfig {
        &self.reuse_config
    }

    /// Whether the workload processes sequences through recurrent layers.
    pub fn is_recurrent(&self) -> bool {
        self.network.is_recurrent()
    }

    /// Whether the accelerator manages activations through main memory with
    /// blocked staging (both CNNs; paper Section IV-C and Table III).
    pub fn activations_spill(&self) -> bool {
        matches!(self.kind, WorkloadKind::C3d | WorkloadKind::AutoPilot)
    }

    /// Executions per input sequence, used to amortize per-sequence weight
    /// loading in the simulator (an utterance of a few seconds or a video
    /// clip).
    pub fn executions_per_sequence(&self) -> u64 {
        match self.kind {
            WorkloadKind::Kaldi => 500, // ~5 s utterance at 10 ms frames
            WorkloadKind::Eesen => 500,
            WorkloadKind::C3d => 20,        // ~11 s clip in 16-frame windows
            WorkloadKind::AutoPilot => 900, // ~30 s of driving at 30 fps
        }
    }

    /// Generates `count` DNN input frames (feed-forward workloads) starting
    /// from a seeded stream.
    ///
    /// # Panics
    ///
    /// Panics for recurrent workloads — use
    /// [`Workload::generate_sequences`].
    pub fn generate_frames(&self, count: usize, seed: u64) -> Vec<Vec<f32>> {
        match self.kind {
            WorkloadKind::Kaldi => {
                let mut stream = audio::SpeechStream::new(kaldi::FEATURES, seed)
                    .relax(0.08)
                    .noise(0.008);
                let frames = stream.frames(count + kaldi::WINDOW - 1);
                audio::sliding_windows(&frames, kaldi::WINDOW)
            }
            WorkloadKind::AutoPilot => {
                let (h, w) = autopilot::frame_dims(self.scale);
                let mut stream = video::DashcamStream::new(h, w, seed);
                // Raw camera noise keeps CONV1's input similarity modest
                // (the paper measures 46% for it) while deeper layers,
                // which average over receptive fields, stay highly similar.
                stream.noise = 0.012;
                (0..count).map(|_| stream.next_frame()).collect()
            }
            WorkloadKind::C3d => {
                let side = c3d::side(self.scale);
                let depth = c3d::window_frames(self.scale);
                let mut clip = video::ActionClip::new(side, depth, seed);
                clip.noise = 0.010;
                (0..count).map(|_| clip.next_window()).collect()
            }
            WorkloadKind::Eesen => panic!("EESEN is recurrent: use generate_sequences"),
        }
    }

    /// Generates `n_seq` sequences of `len` frames each (recurrent
    /// workloads).
    ///
    /// # Panics
    ///
    /// Panics for feed-forward workloads — use
    /// [`Workload::generate_frames`].
    pub fn generate_sequences(&self, n_seq: usize, len: usize, seed: u64) -> Vec<Vec<Vec<f32>>> {
        match self.kind {
            WorkloadKind::Eesen => {
                let features = self.network.input_shape().volume();
                (0..n_seq)
                    .map(|i| {
                        // EESEN sees per-frame features without Kaldi's
                        // window overlap, so its effective similarity is
                        // lower (paper: 38-60% vs Kaldi's 56-75%); shorter
                        // phones and more innovation noise model that.
                        let mut stream =
                            audio::SpeechStream::new(features, seed.wrapping_add(i as u64))
                                .phone_len(2)
                                .relax(0.7)
                                .noise(0.15);
                        stream.frames(len)
                    })
                    .collect()
            }
            _ => panic!("{} is feed-forward: use generate_frames", self.kind),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_build_at_tiny_scale() {
        for kind in WorkloadKind::ALL {
            let w = Workload::build(kind, Scale::Tiny);
            assert_eq!(w.kind(), kind);
            assert_eq!(w.is_recurrent(), kind == WorkloadKind::Eesen);
        }
    }

    #[test]
    fn frame_generation_matches_input_shape() {
        for kind in [
            WorkloadKind::Kaldi,
            WorkloadKind::C3d,
            WorkloadKind::AutoPilot,
        ] {
            let w = Workload::build(kind, Scale::Tiny);
            let frames = w.generate_frames(3, 1);
            assert_eq!(frames.len(), 3);
            for f in &frames {
                assert_eq!(f.len(), w.network().input_shape().volume(), "{kind}");
            }
        }
    }

    #[test]
    fn sequence_generation_matches_input_shape() {
        let w = Workload::build(WorkloadKind::Eesen, Scale::Tiny);
        let seqs = w.generate_sequences(2, 5, 3);
        assert_eq!(seqs.len(), 2);
        assert_eq!(seqs[0].len(), 5);
        assert_eq!(seqs[0][0].len(), w.network().input_shape().volume());
    }

    #[test]
    #[should_panic(expected = "recurrent")]
    fn eesen_frames_panics() {
        Workload::build(WorkloadKind::Eesen, Scale::Tiny).generate_frames(1, 0);
    }

    #[test]
    fn kaldi_windows_overlap() {
        let w = Workload::build(WorkloadKind::Kaldi, Scale::Tiny);
        let frames = w.generate_frames(2, 5);
        // Consecutive windows share 8 of 9 frames: the tail of window t is
        // the head of window t+1.
        let f = kaldi::FEATURES;
        assert_eq!(&frames[0][f..], &frames[1][..8 * f]);
    }

    #[test]
    fn scale_from_env_defaults_to_small() {
        // Do not set the variable here (tests run in parallel); just check
        // the default path parses.
        assert_eq!(Scale::default(), Scale::Small);
    }

    #[test]
    fn spill_flags() {
        assert!(Workload::build(WorkloadKind::C3d, Scale::Tiny).activations_spill());
        assert!(Workload::build(WorkloadKind::AutoPilot, Scale::Tiny).activations_spill());
        assert!(!Workload::build(WorkloadKind::Kaldi, Scale::Tiny).activations_spill());
    }
}

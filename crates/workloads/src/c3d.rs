//! The C3D video-classification CNN (paper Table I, ~300 MB).
//!
//! Eight 3×3×3 "same" convolutions over disjoint windows of 16 RGB frames
//! at 112×112, with max pooling between stages (pool1 is 1×2×2, the rest
//! 2×2×2, final pool in ceil mode), then three FC layers ending in 101
//! action classes.
//!
//! Reuse configuration (paper Section III): 32 clusters everywhere except
//! CONV1, whose quantization error would propagate through the entire
//! network.

use reuse_core::ReuseConfig;
use reuse_nn::{Activation, Network, NetworkBuilder, NnError};
use reuse_tensor::Shape;

use crate::Scale;

/// Frames per input window (disjoint windows, paper Section III).
pub const WINDOW_FRAMES: usize = 16;
/// Spatial side of each input frame at full scale.
pub const SIDE: usize = 112;

/// Spatial side of each input frame at the given scale.
pub fn side(scale: Scale) -> usize {
    match scale {
        Scale::Full => SIDE,
        Scale::Small => 56,
        Scale::Tiny => 16,
    }
}

/// Frames per window at the given scale.
pub fn window_frames(scale: Scale) -> usize {
    match scale {
        Scale::Full | Scale::Small => WINDOW_FRAMES,
        Scale::Tiny => 4,
    }
}

/// Builds the C3D CNN at a given scale.
///
/// `Scale::Full` reproduces the exact Table I geometry. `Scale::Small`
/// keeps the full topology (8 convs, 5 pools, 3 FCs) at half the spatial
/// resolution and a quarter of the channels so default benchmark runs stay
/// tractable on a scalar simulator; `Scale::Tiny` is a shallow 3-conv
/// variant for unit tests. See DESIGN.md.
///
/// # Errors
///
/// Propagates builder errors (cannot occur for the fixed geometries).
pub fn network(scale: Scale) -> Result<Network, NnError> {
    let s = side(scale);
    let d = window_frames(scale);
    let b = NetworkBuilder::with_input_shape("c3d", Shape::d4(3, d, s, s)).seed(0x4333_4421); // "C3D!"
    if matches!(scale, Scale::Tiny) {
        return b
            .conv3d(4, 3, 1, 1, Activation::Relu)
            .pool3d(1, 2, false) // 4x4x8x8
            .conv3d(8, 3, 1, 1, Activation::Relu)
            .pool3d(2, 2, false) // 8x2x4x4
            .conv3d(8, 3, 1, 1, Activation::Relu)
            .pool3d(2, 2, true) // 8x1x2x2
            .flatten()
            .fully_connected(32, Activation::Relu)
            .fully_connected(32, Activation::Relu)
            .fully_connected(10, Activation::Identity)
            .build();
    }
    let (ch, fc_dim, classes): (Vec<usize>, usize, usize) = match scale {
        Scale::Full => (vec![64, 128, 256, 256, 512, 512, 512, 512], 4096, 101),
        _ => (vec![16, 32, 64, 64, 128, 128, 128, 128], 256, 101),
    };
    b.conv3d(ch[0], 3, 1, 1, Activation::Relu) // CONV1
        .pool3d(1, 2, false) // pool1: keep depth
        .conv3d(ch[1], 3, 1, 1, Activation::Relu) // CONV2
        .pool3d(2, 2, false)
        .conv3d(ch[2], 3, 1, 1, Activation::Relu) // CONV3
        .conv3d(ch[3], 3, 1, 1, Activation::Relu) // CONV4
        .pool3d(2, 2, false)
        .conv3d(ch[4], 3, 1, 1, Activation::Relu) // CONV5
        .conv3d(ch[5], 3, 1, 1, Activation::Relu) // CONV6
        .pool3d(2, 2, false)
        .conv3d(ch[6], 3, 1, 1, Activation::Relu) // CONV7
        .conv3d(ch[7], 3, 1, 1, Activation::Relu) // CONV8
        .pool3d(2, 2, true) // pool5, ceil mode: 2x7x7 -> 1x4x4
        .flatten()
        .fully_connected(fc_dim, Activation::Relu) // FC1
        .fully_connected(fc_dim, Activation::Relu) // FC2
        .fully_connected(classes, Activation::Identity) // FC3
        .build()
}

/// The paper's reuse configuration for C3D: 32 clusters, CONV1 excluded.
pub fn reuse_config() -> ReuseConfig {
    ReuseConfig::uniform(32).disable_layer("conv1")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_table1() {
        let net = network(Scale::Full).unwrap();
        let dims: Vec<Vec<usize>> = net
            .layer_input_shapes()
            .iter()
            .map(|s| s.dims().to_vec())
            .collect();
        assert_eq!(dims[0], vec![3, 16, 112, 112]); // CONV1 in
        assert_eq!(dims[2], vec![64, 16, 56, 56]); // CONV2 in
        assert_eq!(dims[4], vec![128, 8, 28, 28]); // CONV3 in
        assert_eq!(dims[5], vec![256, 8, 28, 28]); // CONV4 in
        assert_eq!(dims[7], vec![256, 4, 14, 14]); // CONV5 in
        assert_eq!(dims[8], vec![512, 4, 14, 14]); // CONV6 in
        assert_eq!(dims[10], vec![512, 2, 7, 7]); // CONV7 in
        assert_eq!(dims[11], vec![512, 2, 7, 7]); // CONV8 in
                                                  // FC1 input = 512 x 1 x 4 x 4 = 8192, exactly Table I.
        let fc1_in = net
            .layers()
            .iter()
            .zip(net.layer_input_shapes())
            .find(|((n, _), _)| n == "fc1")
            .map(|(_, s)| s.volume())
            .unwrap();
        assert_eq!(fc1_in, 8192);
        assert_eq!(net.output_shape().dims(), &[101]);
        // ~300 MB model like the paper.
        let mb = net.model_bytes() as f64 / 1e6;
        assert!((250.0..350.0).contains(&mb), "model {mb} MB");
    }

    #[test]
    fn tiny_scale_forward_runs() {
        let net = network(Scale::Tiny).unwrap();
        let s = side(Scale::Tiny);
        let input = vec![0.3f32; 3 * window_frames(Scale::Tiny) * s * s];
        let out = net.forward_flat(&input).unwrap();
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn small_scale_keeps_full_topology() {
        let net = network(Scale::Small).unwrap();
        let convs = net
            .layers()
            .iter()
            .filter(|(n, _)| n.starts_with("conv"))
            .count();
        assert_eq!(convs, 8);
        let input = net.input_shape().clone();
        assert_eq!(input.dims(), &[3, 16, 56, 56]);
    }

    #[test]
    fn reuse_config_excludes_conv1() {
        let c = reuse_config();
        assert!(!c.setting_for("conv1").enabled);
        assert!(c.setting_for("conv2").enabled);
        assert_eq!(c.setting_for("fc1").clusters, 32);
    }
}

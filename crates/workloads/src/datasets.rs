//! Named synthetic datasets with calibration/evaluation splits.
//!
//! The paper calibrates quantizer ranges on the *training* set and
//! evaluates on held-out audio/video. This module gives the synthetic
//! streams the same discipline: a [`Dataset`] is a named, seeded collection
//! of sequences split into a calibration part and an evaluation part, so
//! experiments never profile ranges on the data they measure.

use crate::Workload;

/// A deterministic synthetic dataset for one workload.
#[derive(Debug, Clone)]
pub struct Dataset {
    name: String,
    /// Calibration sequences (profile quantizer ranges here).
    calibration: Vec<Vec<Vec<f32>>>,
    /// Evaluation sequences (measure similarity/reuse/accuracy here).
    evaluation: Vec<Vec<Vec<f32>>>,
}

/// Configuration for dataset generation.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    /// Base seed; calibration and evaluation derive disjoint streams.
    pub seed: u64,
    /// Number of calibration sequences.
    pub calibration_sequences: usize,
    /// Number of evaluation sequences.
    pub evaluation_sequences: usize,
    /// Frames (DNN executions) per sequence.
    pub sequence_length: usize,
}

impl Default for DatasetSpec {
    fn default() -> Self {
        DatasetSpec {
            seed: 42,
            calibration_sequences: 1,
            evaluation_sequences: 3,
            sequence_length: 40,
        }
    }
}

impl Dataset {
    /// Generates a dataset for a workload. Calibration and evaluation use
    /// disjoint seed spaces, so no evaluation frame is ever profiled.
    pub fn generate(workload: &Workload, spec: &DatasetSpec) -> Self {
        let gen_split = |count: usize, salt: u64| -> Vec<Vec<Vec<f32>>> {
            (0..count)
                .map(|i| {
                    let seed = spec
                        .seed
                        .wrapping_mul(0x9E37_79B9)
                        .wrapping_add(salt)
                        .wrapping_add(i as u64 * 7919);
                    if workload.is_recurrent() {
                        workload
                            .generate_sequences(1, spec.sequence_length, seed)
                            .pop()
                            .expect("one sequence requested")
                    } else {
                        workload.generate_frames(spec.sequence_length, seed)
                    }
                })
                .collect()
        };
        Dataset {
            name: format!("{}-{}", workload.kind().name().to_lowercase(), spec.seed),
            calibration: gen_split(spec.calibration_sequences, 0x0C01),
            evaluation: gen_split(spec.evaluation_sequences, 0xE7A1),
        }
    }

    /// Dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Calibration sequences.
    pub fn calibration(&self) -> &[Vec<Vec<f32>>] {
        &self.calibration
    }

    /// Evaluation sequences.
    pub fn evaluation(&self) -> &[Vec<Vec<f32>>] {
        &self.evaluation
    }

    /// Total evaluation executions.
    pub fn evaluation_executions(&self) -> usize {
        self.evaluation.iter().map(Vec::len).sum()
    }

    /// Raw-input temporal statistics of the evaluation split: mean relative
    /// difference between consecutive frames, per sequence.
    pub fn frame_statistics(&self) -> FrameStats {
        let mut rds = Vec::new();
        for seq in &self.evaluation {
            for pair in seq.windows(2) {
                let mut dist2 = 0.0f64;
                let mut mag2 = 0.0f64;
                for (a, b) in pair[0].iter().zip(pair[1].iter()) {
                    let d = (b - a) as f64;
                    dist2 += d * d;
                    mag2 += (*a as f64) * (*a as f64);
                }
                if mag2 > 0.0 {
                    rds.push((dist2.sqrt() / mag2.sqrt()) as f32);
                }
            }
        }
        let mean = if rds.is_empty() {
            0.0
        } else {
            rds.iter().sum::<f32>() / rds.len() as f32
        };
        let max = rds.iter().copied().fold(0.0f32, f32::max);
        FrameStats {
            mean_relative_difference: mean,
            max_relative_difference: max,
        }
    }
}

/// Temporal statistics of a dataset's raw frames.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameStats {
    /// Mean relative difference between consecutive frames (the paper
    /// reports <14% on average for its DNN inputs).
    pub mean_relative_difference: f32,
    /// Maximum observed relative difference.
    pub max_relative_difference: f32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Scale, WorkloadKind};

    fn dataset(kind: WorkloadKind) -> Dataset {
        let w = Workload::build(kind, Scale::Tiny);
        Dataset::generate(
            &w,
            &DatasetSpec {
                seed: 7,
                calibration_sequences: 1,
                evaluation_sequences: 2,
                sequence_length: 10,
            },
        )
    }

    #[test]
    fn splits_have_requested_sizes() {
        let d = dataset(WorkloadKind::Kaldi);
        assert_eq!(d.calibration().len(), 1);
        assert_eq!(d.evaluation().len(), 2);
        assert_eq!(d.evaluation_executions(), 20);
        assert!(d.name().contains("kaldi"));
    }

    #[test]
    fn calibration_and_evaluation_are_disjoint() {
        let d = dataset(WorkloadKind::Kaldi);
        // No calibration frame equals any evaluation frame (different seed
        // streams).
        for c in &d.calibration()[0][..3] {
            for seq in d.evaluation() {
                for e in &seq[..3] {
                    assert_ne!(c, e);
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = dataset(WorkloadKind::AutoPilot);
        let b = dataset(WorkloadKind::AutoPilot);
        assert_eq!(a.evaluation()[0][0], b.evaluation()[0][0]);
    }

    #[test]
    fn frame_statistics_in_paper_band() {
        // The paper: mean relative difference below 14% for its inputs.
        let d = dataset(WorkloadKind::AutoPilot);
        let stats = d.frame_statistics();
        assert!(stats.mean_relative_difference > 0.0);
        assert!(
            stats.mean_relative_difference < 0.2,
            "mean rd {}",
            stats.mean_relative_difference
        );
        assert!(stats.max_relative_difference >= stats.mean_relative_difference);
    }

    #[test]
    fn recurrent_datasets_produce_sequences() {
        let d = dataset(WorkloadKind::Eesen);
        assert_eq!(d.evaluation()[0].len(), 10);
        let w = Workload::build(WorkloadKind::Eesen, Scale::Tiny);
        assert_eq!(
            d.evaluation()[0][0].len(),
            w.network().input_shape().volume()
        );
    }
}

//! Output-agreement accuracy proxy.
//!
//! Without the trained models and labeled test sets, "accuracy loss" is
//! measured as the fraction of executions whose *decision* changes when
//! quantization + reuse is enabled, relative to the full-precision network
//! on the same inputs (see DESIGN.md substitution table):
//!
//! * Classification networks (Kaldi, EESEN, C3D): arg-max agreement.
//! * Regression networks (AutoPilot): steering output within a tolerance.

use reuse_tensor::Tensor;

/// Agreement between a test run and its full-precision reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgreementReport {
    /// Executions compared.
    pub executions: u64,
    /// Executions whose decisions agreed.
    pub agreements: u64,
}

impl AgreementReport {
    /// Agreement ratio in `[0, 1]` (1 when nothing was compared).
    pub fn ratio(&self) -> f64 {
        if self.executions == 0 {
            1.0
        } else {
            self.agreements as f64 / self.executions as f64
        }
    }

    /// The "accuracy loss" the experiment tables print: `1 − ratio`.
    pub fn loss(&self) -> f64 {
        1.0 - self.ratio()
    }
}

/// Arg-max agreement for classification outputs.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn classification_agreement(reference: &[Tensor], test: &[Tensor]) -> AgreementReport {
    assert_eq!(reference.len(), test.len(), "output sequences must align");
    let agreements = reference
        .iter()
        .zip(test.iter())
        .filter(|(r, t)| r.argmax() == t.argmax())
        .count() as u64;
    AgreementReport {
        executions: reference.len() as u64,
        agreements,
    }
}

/// Tolerance agreement for scalar regression outputs: agree when
/// `|test − reference| ≤ tol · max(|reference|, floor)`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn regression_agreement(
    reference: &[Tensor],
    test: &[Tensor],
    tol: f32,
    floor: f32,
) -> AgreementReport {
    assert_eq!(reference.len(), test.len(), "output sequences must align");
    let agreements = reference
        .iter()
        .zip(test.iter())
        .filter(|(r, t)| {
            let rv = r.as_slice()[0];
            let tv = t.as_slice()[0];
            (tv - rv).abs() <= tol * rv.abs().max(floor)
        })
        .count() as u64;
    AgreementReport {
        executions: reference.len() as u64,
        agreements,
    }
}

/// Mean relative L2 error between test and reference output vectors:
/// `mean_t ‖test_t − ref_t‖ / ‖ref_t‖`. This is the direct measure of the
/// degradation channel quantization + reuse introduces; the paper's small
/// accuracy losses correspond to this being small.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mean_relative_error(reference: &[Tensor], test: &[Tensor]) -> f64 {
    assert_eq!(reference.len(), test.len(), "output sequences must align");
    if reference.is_empty() {
        return 0.0;
    }
    let mut total = 0.0f64;
    for (r, t) in reference.iter().zip(test.iter()) {
        let dist = r.l2_distance(t).expect("aligned shapes") as f64;
        let mag = (r.l2_norm() as f64).max(1e-9);
        total += dist / mag;
    }
    total / reference.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_slice_1d(v).unwrap()
    }

    #[test]
    fn classification_counts_argmax_matches() {
        let reference = vec![t(&[0.1, 0.9]), t(&[0.8, 0.2]), t(&[0.4, 0.6])];
        let test = vec![t(&[0.2, 0.8]), t(&[0.3, 0.7]), t(&[0.1, 0.9])];
        let r = classification_agreement(&reference, &test);
        assert_eq!(r.executions, 3);
        assert_eq!(r.agreements, 2);
        assert!((r.loss() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn regression_uses_relative_tolerance_with_floor() {
        let reference = vec![t(&[1.0]), t(&[0.0]), t(&[-2.0])];
        let test = vec![t(&[1.04]), t(&[0.05]), t(&[-2.5])];
        let r = regression_agreement(&reference, &test, 0.05, 0.2);
        // 1.04 within 5% of 1.0; 0.05 within 5% of floor 0.2? 0.05>0.01 no;
        // -2.5 vs -2.0 is 25% off.
        assert_eq!(r.agreements, 1);
    }

    #[test]
    fn empty_comparison_is_perfect() {
        let r = classification_agreement(&[], &[]);
        assert_eq!(r.ratio(), 1.0);
        assert_eq!(r.loss(), 0.0);
        assert_eq!(mean_relative_error(&[], &[]), 0.0);
    }

    #[test]
    fn relative_error_zero_for_identical_outputs() {
        let outs = vec![t(&[3.0, 4.0]), t(&[1.0, 0.0])];
        assert_eq!(mean_relative_error(&outs, &outs), 0.0);
    }

    #[test]
    fn relative_error_scales_with_distance() {
        let reference = vec![t(&[3.0, 4.0])]; // norm 5
        let test = vec![t(&[3.0, 4.5])]; // distance 0.5
        let e = mean_relative_error(&reference, &test);
        assert!((e - 0.1).abs() < 1e-6, "error {e}");
    }
}

//! Synthetic video streams.
//!
//! Consecutive video frames are dominated by static background with a small
//! amount of moving content and slow global illumination drift — which is
//! exactly why the paper's CNNs reuse 75-95% of their computations. Two
//! generators model the paper's two video workloads:
//!
//! * [`DashcamStream`] — AutoPilot's front-camera view: sky/road gradient,
//!   drifting lane markers controlled by a latent steering angle, sensor
//!   noise. Consecutive frames are near-identical.
//! * [`ActionClip`] — C3D's action-recognition clips: a static textured
//!   background with a few moving blobs. The CNN consumes *disjoint*
//!   16-frame windows, so the window-to-window similarity comes from the
//!   scene staying put, not from window overlap.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic synthetic dashcam (AutoPilot-style) frame stream.
///
/// Frames are `[3, height, width]` row-major RGB in `[0, 1]`.
#[derive(Debug, Clone)]
pub struct DashcamStream {
    rng: StdRng,
    width: usize,
    height: usize,
    /// Latent steering angle in `[-1, 1]`; drifts slowly.
    steering: f32,
    /// Lane-marker phase (road texture scroll position).
    phase: f32,
    /// Illumination multiplier; drifts very slowly.
    illumination: f32,
    /// Per-pixel sensor noise amplitude.
    pub noise: f32,
}

impl DashcamStream {
    /// Creates a stream of `height × width` RGB frames.
    pub fn new(height: usize, width: usize, seed: u64) -> Self {
        DashcamStream {
            rng: StdRng::seed_from_u64(seed),
            width,
            height,
            steering: 0.0,
            phase: 0.0,
            illumination: 1.0,
            noise: 0.004,
        }
    }

    /// The latent steering angle the frame encodes — the "ground truth" a
    /// steering network should regress.
    pub fn steering(&self) -> f32 {
        self.steering
    }

    /// Produces the next frame as a flat `[3 * height * width]` vector.
    pub fn next_frame(&mut self) -> Vec<f32> {
        // Slow latent dynamics.
        self.steering = (self.steering + self.rng.gen_range(-0.03f32..0.03)).clamp(-1.0, 1.0);
        self.phase += 0.15;
        self.illumination =
            (self.illumination + self.rng.gen_range(-0.002f32..0.002)).clamp(0.85, 1.15);

        let (h, w) = (self.height, self.width);
        let mut frame = vec![0.0f32; 3 * h * w];
        let horizon = h as f32 * 0.45;
        for y in 0..h {
            let fy = y as f32;
            for x in 0..w {
                let fx = x as f32;
                let (r, g, b) = if fy < horizon {
                    // Sky gradient.
                    let t = fy / horizon;
                    (0.35 + 0.1 * t, 0.55 + 0.1 * t, 0.9 - 0.2 * t)
                } else {
                    // Road with lane markers converging toward the vanishing
                    // point, shifted by the steering angle.
                    let depth = (fy - horizon) / (h as f32 - horizon);
                    let center = w as f32 / 2.0 + self.steering * (1.0 - depth) * w as f32 * 0.3;
                    let lane_half = w as f32 * (0.08 + 0.3 * depth);
                    let dist_l = (fx - (center - lane_half)).abs();
                    let dist_r = (fx - (center + lane_half)).abs();
                    let dash_on = ((fy * 0.3 + self.phase).sin()) > 0.0;
                    let marker = (dist_l < 1.5 || dist_r < 1.5) && dash_on;
                    if marker {
                        (0.9, 0.9, 0.85)
                    } else {
                        let shade = 0.25 + 0.1 * depth;
                        (shade, shade, shade + 0.02)
                    }
                };
                let noise = self.rng.gen_range(-1.0f32..1.0) * self.noise;
                let il = self.illumination;
                frame[y * w + x] = (r * il + noise).clamp(0.0, 1.0);
                frame[h * w + y * w + x] = (g * il + noise).clamp(0.0, 1.0);
                frame[2 * h * w + y * w + x] = (b * il + noise).clamp(0.0, 1.0);
            }
        }
        frame
    }
}

/// A deterministic synthetic action clip (C3D-style).
///
/// Produces disjoint windows of `depth` frames, each frame `side × side`
/// RGB, flattened to `[3, depth, side, side]` (channel-major, the C3D input
/// layout).
#[derive(Debug, Clone)]
pub struct ActionClip {
    rng: StdRng,
    side: usize,
    depth: usize,
    background: Vec<f32>,
    /// Moving blob positions and velocities in pixel space.
    blobs: Vec<(f32, f32, f32, f32)>,
    blob_radius: f32,
    illumination: f32,
    /// Per-pixel sensor noise amplitude.
    pub noise: f32,
    frame_counter: u64,
}

impl ActionClip {
    /// Creates a clip generator of `side × side` frames in windows of
    /// `depth`.
    pub fn new(side: usize, depth: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        // Smooth random background texture (low-frequency).
        let mut background = vec![0.0f32; 3 * side * side];
        let waves: Vec<(f32, f32, f32, f32)> = (0..6)
            .map(|_| {
                (
                    rng.gen_range(0.02..0.2),
                    rng.gen_range(0.02..0.2),
                    rng.gen_range(0.0..std::f32::consts::TAU),
                    rng.gen_range(0.05..0.25),
                )
            })
            .collect();
        for c in 0..3 {
            for y in 0..side {
                for x in 0..side {
                    let mut v = 0.45 + 0.05 * c as f32;
                    for &(kx, ky, ph, amp) in &waves {
                        v += amp * (kx * x as f32 + ky * y as f32 + ph + c as f32).sin() * 0.5;
                    }
                    background[(c * side + y) * side + x] = v.clamp(0.0, 1.0);
                }
            }
        }
        let blobs = (0..3)
            .map(|_| {
                (
                    rng.gen_range(0.0..side as f32),
                    rng.gen_range(0.0..side as f32),
                    rng.gen_range(-1.2f32..1.2),
                    rng.gen_range(-1.2f32..1.2),
                )
            })
            .collect();
        ActionClip {
            rng,
            side,
            depth,
            background,
            blobs,
            blob_radius: side as f32 * 0.08,
            illumination: 1.0,
            noise: 0.003,
            frame_counter: 0,
        }
    }

    fn render_frame(&mut self) -> Vec<f32> {
        let side = self.side;
        self.illumination =
            (self.illumination + self.rng.gen_range(-0.001f32..0.001)).clamp(0.9, 1.1);
        for blob in &mut self.blobs {
            blob.0 += blob.2;
            blob.1 += blob.3;
            if blob.0 < 0.0 || blob.0 >= side as f32 {
                blob.2 = -blob.2;
                blob.0 = blob.0.clamp(0.0, side as f32 - 1.0);
            }
            if blob.1 < 0.0 || blob.1 >= side as f32 {
                blob.3 = -blob.3;
                blob.1 = blob.1.clamp(0.0, side as f32 - 1.0);
            }
        }
        self.frame_counter += 1;
        let mut frame = self.background.clone();
        let r2 = self.blob_radius * self.blob_radius;
        for c in 0..3 {
            for (bi, &(bx, by, _, _)) in self.blobs.iter().enumerate() {
                let color = 0.2 + 0.3 * ((bi + c) % 3) as f32;
                let x_lo = (bx - self.blob_radius).max(0.0) as usize;
                let x_hi = ((bx + self.blob_radius) as usize + 1).min(side);
                let y_lo = (by - self.blob_radius).max(0.0) as usize;
                let y_hi = ((by + self.blob_radius) as usize + 1).min(side);
                for y in y_lo..y_hi {
                    for x in x_lo..x_hi {
                        let d2 = (x as f32 - bx).powi(2) + (y as f32 - by).powi(2);
                        if d2 < r2 {
                            frame[(c * side + y) * side + x] = color;
                        }
                    }
                }
            }
        }
        for v in &mut frame {
            let noise = self.rng.gen_range(-1.0f32..1.0) * self.noise;
            *v = (*v * self.illumination + noise).clamp(0.0, 1.0);
        }
        frame
    }

    /// Produces the next disjoint window of `depth` frames, flattened to
    /// the `[3, depth, side, side]` layout.
    pub fn next_window(&mut self) -> Vec<f32> {
        let (side, depth) = (self.side, self.depth);
        let plane = side * side;
        let mut window = vec![0.0f32; 3 * depth * plane];
        for d in 0..depth {
            let frame = self.render_frame(); // [3, side, side]
            for c in 0..3 {
                let src = &frame[c * plane..(c + 1) * plane];
                let dst = &mut window[(c * depth + d) * plane..][..plane];
                dst.copy_from_slice(src);
            }
        }
        window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn similarity(a: &[f32], b: &[f32], tol: f32) -> f64 {
        let same = a
            .iter()
            .zip(b.iter())
            .filter(|(x, y)| (**x - **y).abs() <= tol)
            .count();
        same as f64 / a.len() as f64
    }

    #[test]
    fn dashcam_is_deterministic() {
        let mut a = DashcamStream::new(33, 100, 5);
        let mut b = DashcamStream::new(33, 100, 5);
        assert_eq!(a.next_frame(), b.next_frame());
    }

    #[test]
    fn dashcam_consecutive_frames_mostly_static() {
        let mut s = DashcamStream::new(66, 200, 1);
        let f1 = s.next_frame();
        let f2 = s.next_frame();
        // With a 1/32 quantization step most pixels should land in the same
        // cluster.
        let sim = similarity(&f1, &f2, 1.0 / 32.0);
        assert!(sim > 0.7, "frame similarity {sim}");
    }

    #[test]
    fn dashcam_steering_stays_bounded_and_moves() {
        let mut s = DashcamStream::new(33, 100, 2);
        let mut angles = Vec::new();
        for _ in 0..200 {
            s.next_frame();
            angles.push(s.steering());
        }
        assert!(angles.iter().all(|a| a.abs() <= 1.0));
        let spread = angles.iter().cloned().fold(f32::MIN, f32::max)
            - angles.iter().cloned().fold(f32::MAX, f32::min);
        assert!(spread > 0.05, "steering should drift, spread {spread}");
    }

    #[test]
    fn action_clip_windows_are_similar_but_not_identical() {
        let mut c = ActionClip::new(56, 8, 3);
        let w1 = c.next_window();
        let w2 = c.next_window();
        assert_eq!(w1.len(), 3 * 8 * 56 * 56);
        let sim = similarity(&w1, &w2, 1.0 / 32.0);
        assert!(sim > 0.6, "window similarity {sim}");
        assert!(sim < 0.9999, "windows must differ (moving blobs)");
    }

    #[test]
    fn action_clip_layout_is_channel_major() {
        // All of channel 0's frames come before channel 1's.
        let mut c = ActionClip::new(8, 2, 4);
        let w = c.next_window();
        assert_eq!(w.len(), 3 * 2 * 64);
        // The window is deterministic under the same seed.
        let mut c2 = ActionClip::new(8, 2, 4);
        assert_eq!(w, c2.next_window());
    }

    #[test]
    fn pixels_stay_in_unit_range() {
        let mut d = DashcamStream::new(20, 30, 6);
        assert!(d.next_frame().iter().all(|v| (0.0..=1.0).contains(v)));
        let mut a = ActionClip::new(16, 4, 6);
        assert!(a.next_window().iter().all(|v| (0.0..=1.0).contains(v)));
    }
}

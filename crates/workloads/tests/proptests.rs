//! Property-based tests of the synthetic input generators: determinism,
//! bounds, and temporal-similarity structure.

use proptest::prelude::*;
use reuse_workloads::audio::{sliding_windows, SpeechStream};
use reuse_workloads::video::{ActionClip, DashcamStream};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn speech_stream_deterministic(seed in 0u64..1000, features in 4usize..64) {
        let mut a = SpeechStream::new(features, seed);
        let mut b = SpeechStream::new(features, seed);
        prop_assert_eq!(a.frames(16), b.frames(16));
    }

    #[test]
    fn speech_frames_bounded(seed in 0u64..1000, noise in 0.0f32..0.2) {
        let mut s = SpeechStream::new(16, seed).noise(noise);
        for frame in s.frames(64) {
            prop_assert!(frame.iter().all(|v| v.abs() <= 1.5));
        }
    }

    #[test]
    fn higher_noise_lowers_frame_similarity(seed in 0u64..100) {
        let step = 2.0 / 16.0; // a 16-cluster quantizer over [-1, 1]
        let sim_of = |noise: f32| {
            let mut s = SpeechStream::new(32, seed).noise(noise);
            let frames = s.frames(50);
            let mut same = 0usize;
            let mut total = 0usize;
            for pair in frames.windows(2) {
                for (a, b) in pair[0].iter().zip(pair[1].iter()) {
                    total += 1;
                    if ((a / step).round() - (b / step).round()).abs() < 0.5 {
                        same += 1;
                    }
                }
            }
            same as f64 / total as f64
        };
        let quiet = sim_of(0.005);
        let loud = sim_of(0.3);
        prop_assert!(quiet > loud, "quiet {quiet} <= loud {loud}");
    }

    #[test]
    fn sliding_windows_preserve_frame_data(
        n_frames in 3usize..10, window in 1usize..4, dim in 1usize..5
    ) {
        prop_assume!(window <= n_frames);
        let frames: Vec<Vec<f32>> = (0..n_frames)
            .map(|t| (0..dim).map(|d| (t * dim + d) as f32).collect())
            .collect();
        let wins = sliding_windows(&frames, window);
        prop_assert_eq!(wins.len(), n_frames - window + 1);
        for (t, win) in wins.iter().enumerate() {
            prop_assert_eq!(win.len(), window * dim);
            // Window t starts with frame t.
            prop_assert_eq!(&win[..dim], frames[t].as_slice());
        }
    }

    #[test]
    fn dashcam_pixels_unit_bounded(seed in 0u64..100) {
        let mut s = DashcamStream::new(20, 40, seed);
        for _ in 0..5 {
            let f = s.next_frame();
            prop_assert_eq!(f.len(), 3 * 20 * 40);
            prop_assert!(f.iter().all(|v| (0.0..=1.0).contains(v)));
            prop_assert!(s.steering().abs() <= 1.0);
        }
    }

    #[test]
    fn action_clip_windows_deterministic(seed in 0u64..100) {
        let mut a = ActionClip::new(16, 4, seed);
        let mut b = ActionClip::new(16, 4, seed);
        prop_assert_eq!(a.next_window(), b.next_window());
        // Streams diverge from their own history (motion), not across
        // instances.
        let w2a = a.next_window();
        let w2b = b.next_window();
        prop_assert_eq!(w2a, w2b);
    }
}

//! Serving-runtime semantics: a [`StreamServer`] multiplexing N streams
//! over one shared model must be **bit-identical** to running each stream
//! alone through its own [`reuse_serve::ReuseSession`] — outputs and
//! metrics, under arbitrary submit/tick interleavings and any dispatch
//! parallelism — while enforcing the queue, eviction, and shedding
//! policies.

use std::sync::Arc;

use proptest::prelude::*;
use reuse_core::{CompiledModel, ReuseConfig};
use reuse_nn::{init::Rng64, Activation, Network, NetworkBuilder};
use reuse_serve::{ServeError, ServerConfig, StreamServer, SubmitResult};

/// A smooth random walk of frames, mimicking consecutive input windows.
fn walk(len: usize, dim: usize, step: f32, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = Rng64::new(seed);
    let mut frame: Vec<f32> = (0..dim).map(|_| rng.uniform(0.5)).collect();
    (0..len)
        .map(|_| {
            for v in &mut frame {
                *v = (*v + rng.uniform(step)).clamp(-1.0, 1.0);
            }
            frame.clone()
        })
        .collect()
}

fn mlp() -> Network {
    NetworkBuilder::new("serve-mlp", 12)
        .seed(5)
        .fully_connected(24, Activation::Relu)
        .fully_connected(16, Activation::Relu)
        .fully_connected(4, Activation::Identity)
        .build()
        .unwrap()
}

fn rnn() -> Network {
    NetworkBuilder::new("serve-rnn", 10)
        .seed(7)
        .lstm(8)
        .fully_connected(3, Activation::Identity)
        .build()
        .unwrap()
}

fn assert_bits_eq(a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}");
    }
}

/// Pushes every stream through the server (submitting `chunk` frames per
/// stream per round, ticking until drained) and returns the collected
/// outputs per stream.
fn run_server(
    server: &mut StreamServer,
    streams: &[(u64, Vec<Vec<f32>>)],
    chunk: usize,
) -> Vec<Vec<Vec<f32>>> {
    let mut collected: Vec<Vec<Vec<f32>>> = streams.iter().map(|_| Vec::new()).collect();
    let n_frames = streams.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
    let mut cursor = 0usize;
    while cursor < n_frames {
        for (s, (id, stream)) in streams.iter().enumerate() {
            for frame in stream.iter().skip(cursor).take(chunk) {
                // Bounded queues: tick until the frame fits.
                loop {
                    match server.submit(*id, frame).unwrap() {
                        SubmitResult::Accepted => break,
                        SubmitResult::QueueFull => {
                            server.tick().unwrap();
                            server.drain_outputs(*id, |out| collected[s].push(out.to_vec()));
                        }
                        SubmitResult::Shed | SubmitResult::DeadlineShed => {
                            panic!("healthy stream must not shed")
                        }
                    }
                }
            }
        }
        cursor += chunk;
        server.tick().unwrap();
        for (s, (id, _)) in streams.iter().enumerate() {
            server.drain_outputs(*id, |out| collected[s].push(out.to_vec()));
        }
    }
    while server.ready_units() > 0 {
        server.tick().unwrap();
        for (s, (id, _)) in streams.iter().enumerate() {
            server.drain_outputs(*id, |out| collected[s].push(out.to_vec()));
        }
    }
    collected
}

/// Runs the same frames through standalone sessions and checks the server's
/// outputs and per-stream metrics against them bit for bit.
fn check_against_standalone(
    model: &Arc<CompiledModel>,
    server: &StreamServer,
    streams: &[(u64, Vec<Vec<f32>>)],
    collected: &[Vec<Vec<f32>>],
) {
    for ((id, stream), outs) in streams.iter().zip(collected.iter()) {
        assert_eq!(outs.len(), stream.len(), "stream {id}: all frames served");
        let mut alone = model.new_session();
        let mut reference = Vec::new();
        for (frame, out) in stream.iter().zip(outs.iter()) {
            alone.execute_into(frame, &mut reference).unwrap();
            assert_bits_eq(out, &reference);
        }
        let session = server.session(*id).expect("stream still resident");
        assert_eq!(
            session.metrics(),
            alone.metrics(),
            "stream {id}: EngineMetrics must match a standalone run"
        );
    }
}

#[test]
fn server_outputs_match_standalone_sessions() {
    let net = mlp();
    let model = Arc::new(CompiledModel::new(&net, &ReuseConfig::uniform(32)));
    let streams = vec![
        (7u64, walk(40, 12, 0.08, 11)),
        (3u64, walk(40, 12, 0.15, 99)),
        (1000u64, walk(40, 12, 0.05, 42)),
    ];
    let mut server = StreamServer::new(
        Arc::clone(&model),
        ServerConfig::default().queue_capacity(4).batch_max(2),
    )
    .unwrap();
    let collected = run_server(&mut server, &streams, 3);
    check_against_standalone(&model, &server, &streams, &collected);
    assert_eq!(server.frames_completed(), 120);
    assert_eq!(server.latency().count(), 120);
    let snap = server.snapshot();
    assert_eq!(snap.frames_completed, 120);
    assert_eq!(snap.active_streams, 3);
    assert!(snap.streams.iter().all(|s| s.frames_done == 40));
}

#[test]
fn parallel_dispatch_is_bit_identical_to_serial() {
    let net = mlp();
    let model = Arc::new(CompiledModel::new(&net, &ReuseConfig::uniform(16)));
    let streams: Vec<(u64, Vec<Vec<f32>>)> =
        (0..4).map(|s| (s, walk(25, 12, 0.1, 300 + s))).collect();

    let mut serial = StreamServer::new(Arc::clone(&model), ServerConfig::default()).unwrap();
    let serial_out = run_server(&mut serial, &streams, 2);

    // Oversubscribed so the work-stealing path actually runs multi-worker
    // even on a 1-core host.
    let parallel = reuse_serve::StreamServer::new(
        Arc::clone(&model),
        ServerConfig::default()
            .parallel(reuse_tensor::ParallelConfig::with_threads(4).oversubscribed()),
    );
    let mut parallel = parallel.unwrap();
    let parallel_out = run_server(&mut parallel, &streams, 2);

    for (a, b) in serial_out.iter().zip(parallel_out.iter()) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_bits_eq(x, y);
        }
    }
    check_against_standalone(&model, &parallel, &streams, &parallel_out);
}

#[test]
fn queue_full_reports_backpressure() {
    let net = mlp();
    let model = Arc::new(CompiledModel::new(&net, &ReuseConfig::uniform(16)));
    let mut server = StreamServer::new(model, ServerConfig::default().queue_capacity(2)).unwrap();
    let frame = vec![0.25; 12];
    assert_eq!(server.submit(0, &frame).unwrap(), SubmitResult::Accepted);
    assert_eq!(server.submit(0, &frame).unwrap(), SubmitResult::Accepted);
    assert_eq!(server.submit(0, &frame).unwrap(), SubmitResult::QueueFull);
    assert_eq!(server.rejected_queue_full(), 1);
    assert_eq!(server.queue_len(0), 2);
    // A tick makes room again.
    server.tick().unwrap();
    assert_eq!(server.submit(0, &frame).unwrap(), SubmitResult::Accepted);
    let snap = server.snapshot();
    assert_eq!(snap.rejected_queue_full, 1);
    assert_eq!(snap.frames_submitted, 3);
}

#[test]
fn lru_eviction_caps_the_pool_and_recreated_streams_start_fresh() {
    let net = mlp();
    let model = Arc::new(CompiledModel::new(&net, &ReuseConfig::uniform(32)));
    let mut server =
        StreamServer::new(Arc::clone(&model), ServerConfig::default().max_sessions(2)).unwrap();
    let warm = walk(6, 12, 0.1, 8);

    // Warm streams 0 then 1 (so 0 is least recently used).
    for frame in &warm {
        server.submit(0, frame).unwrap();
        server.tick().unwrap();
    }
    for frame in &warm {
        server.submit(1, frame).unwrap();
        server.tick().unwrap();
    }
    assert_eq!(server.stream_count(), 2);

    // Stream 2 arrives: pool is at cap, stream 0 (LRU) is evicted.
    server.submit(2, &warm[0]).unwrap();
    assert_eq!(server.stream_count(), 2);
    assert!(!server.contains(0));
    assert!(server.contains(1));
    assert!(server.contains(2));
    assert_eq!(server.evictions(), 1);

    // Stream 0 comes back: evicts stream 1 (now LRU) and gets a *fresh*
    // session — its outputs must match a brand-new standalone session, not
    // the warmed-up state it had before eviction.
    let fresh_frames = walk(8, 12, 0.2, 77);
    let mut outs = Vec::new();
    for frame in &fresh_frames {
        server.submit(0, frame).unwrap();
        server.tick().unwrap();
        server.drain_outputs(0, |out| outs.push(out.to_vec()));
    }
    assert!(!server.contains(1));
    let mut alone = model.new_session();
    let mut reference = Vec::new();
    for (frame, out) in fresh_frames.iter().zip(outs.iter()) {
        alone.execute_into(frame, &mut reference).unwrap();
        assert_bits_eq(out, &reference);
    }
    assert_eq!(
        server.session(0).unwrap().metrics(),
        alone.metrics(),
        "re-created stream must carry no state from before its eviction"
    );
    let snap = server.snapshot();
    assert_eq!(snap.evictions, 2);
}

#[test]
fn degraded_stream_sheds_past_the_watermark() {
    // A coarse quantizer with a tight watchdog bound and fast escalation
    // auto-disables reuse layers; the server then sheds that stream's
    // submits once its queue reaches the watermark.
    let net = mlp();
    let config = ReuseConfig::uniform(2)
        .drift_watchdog(1, 1e-6)
        .drift_escalate_after(2);
    let model = Arc::new(CompiledModel::new(&net, &config));
    let mut server = StreamServer::new(
        model,
        ServerConfig::default().queue_capacity(4).shed_watermark(1),
    )
    .unwrap();

    for frame in &walk(30, 12, 0.15, 3) {
        server.submit(9, frame).unwrap();
        server.tick().unwrap();
        server.drain_outputs(9, |_| {});
    }
    let session = server.session(9).unwrap();
    assert!(
        session.auto_disabled_layers().next().is_some(),
        "watchdog must have escalated: {:?}",
        session.watchdog_stats()
    );

    // Queue empty (below watermark): still accepted.
    let frame = vec![0.5; 12];
    assert_eq!(server.submit(9, &frame).unwrap(), SubmitResult::Accepted);
    // At the watermark: shed.
    assert_eq!(server.submit(9, &frame).unwrap(), SubmitResult::Shed);
    assert_eq!(server.shed_frames(), 1);
    let snap = server.snapshot();
    assert_eq!(snap.shed, 1);
    assert!(snap.streams.iter().any(|s| s.degraded));
}

#[test]
fn recurrent_sequences_match_a_standalone_session() {
    let net = rnn();
    let model = Arc::new(CompiledModel::new(&net, &ReuseConfig::uniform(16)));
    let seq_len = 4;
    let mut server = StreamServer::new(
        Arc::clone(&model),
        ServerConfig::default()
            .sequence_len(seq_len)
            .queue_capacity(2 * seq_len),
    )
    .unwrap();

    let frames = walk(3 * seq_len, 10, 0.1, 21);
    let mut outs = Vec::new();
    for (t, frame) in frames.iter().enumerate() {
        assert_eq!(server.submit(4, frame).unwrap(), SubmitResult::Accepted);
        if t % seq_len < seq_len - 1 {
            // Partial sequences never execute.
            let before = server.frames_completed();
            server.tick().unwrap();
            assert_eq!(server.frames_completed(), before);
        } else {
            server.tick().unwrap();
            server.drain_outputs(4, |out| outs.push(out.to_vec()));
        }
    }
    assert_eq!(outs.len(), frames.len(), "one output per timestep");

    let mut alone = model.new_session();
    let mut reference = Vec::new();
    for seq in frames.chunks(seq_len) {
        reference.extend(alone.execute_sequence(seq).unwrap());
    }
    for (out, r) in outs.iter().zip(reference.iter()) {
        assert_bits_eq(out, r.as_slice());
    }
    assert_eq!(server.session(4).unwrap().metrics(), alone.metrics());
}

#[test]
fn config_mismatches_are_rejected() {
    let ff = Arc::new(CompiledModel::new(&mlp(), &ReuseConfig::uniform(8)));
    let rec = Arc::new(CompiledModel::new(&rnn(), &ReuseConfig::uniform(8)));

    // Recurrent model without a sequence length.
    let err = StreamServer::new(Arc::clone(&rec), ServerConfig::default()).unwrap_err();
    assert!(matches!(err, ServeError::Config { .. }), "{err}");

    // Feed-forward model with a sequence length.
    let err =
        StreamServer::new(Arc::clone(&ff), ServerConfig::default().sequence_len(4)).unwrap_err();
    assert!(matches!(err, ServeError::Config { .. }), "{err}");

    // Sequence longer than the queue can ever hold.
    let err = StreamServer::new(
        rec,
        ServerConfig::default().sequence_len(8).queue_capacity(4),
    )
    .unwrap_err();
    assert!(matches!(err, ServeError::Config { .. }), "{err}");

    // Valid feed-forward config constructs.
    assert!(StreamServer::new(ff, ServerConfig::default()).is_ok());
}

#[test]
fn wrong_frame_length_is_an_error() {
    let model = Arc::new(CompiledModel::new(&mlp(), &ReuseConfig::uniform(8)));
    let mut server = StreamServer::new(model, ServerConfig::default()).unwrap();
    let err = server.submit(0, &[1.0; 5]).unwrap_err();
    assert!(matches!(err, ServeError::Reuse(_)), "{err}");
    // The failed submit created no stream state.
    assert_eq!(server.frames_submitted(), 0);
}

#[test]
fn undrained_outputs_drop_oldest_not_newest() {
    let net = mlp();
    let model = Arc::new(CompiledModel::new(&net, &ReuseConfig::uniform(16)));
    let mut server = StreamServer::new(
        Arc::clone(&model),
        ServerConfig::default().queue_capacity(2).batch_max(4),
    )
    .unwrap();
    let frames = walk(4, 12, 0.1, 55);

    // Two submit+tick rounds without draining: the bounded output queue
    // (capacity 2) keeps only the newest two results.
    for pair in frames.chunks(2) {
        for frame in pair {
            assert_eq!(server.submit(0, frame).unwrap(), SubmitResult::Accepted);
        }
        server.tick().unwrap();
    }
    let mut outs = Vec::new();
    let drained = server.drain_outputs(0, |out| outs.push(out.to_vec()));
    assert_eq!(drained, 2);
    assert_eq!(server.snapshot().outputs_dropped, 2);

    // The survivors are the outputs of frames 2 and 3.
    let mut alone = model.new_session();
    let mut reference = Vec::new();
    let mut expected = Vec::new();
    for frame in &frames {
        alone.execute_into(frame, &mut reference).unwrap();
        expected.push(reference.clone());
    }
    assert_bits_eq(&outs[0], &expected[2]);
    assert_bits_eq(&outs[1], &expected[3]);
}

/// Regression (sticky errors): a stream that hit an execution error must
/// not silently resume on the next tick. The error is reported exactly
/// once; the stream then stays parked — no frames complete, no ready
/// units — until eviction.
#[test]
fn failed_stream_stays_failed_and_reports_once() {
    let net = mlp();
    let model = Arc::new(CompiledModel::new(&net, &ReuseConfig::uniform(16)));
    let mut server = StreamServer::new(model, ServerConfig::default()).unwrap();
    let frames = walk(6, 12, 0.1, 13);

    for frame in &frames[..3] {
        assert_eq!(server.submit(5, frame).unwrap(), SubmitResult::Accepted);
    }
    server.tick().unwrap();
    server.drain_outputs(5, |_| {});
    let done_before = server.frames_completed();

    let injected = reuse_core::ReuseError::Nn(reuse_nn::NnError::InputShape {
        expected: 12,
        actual: 11,
    });
    assert!(server.inject_stream_error(5, injected));
    assert!(server.stream_failed(5));
    for frame in &frames[3..] {
        assert_eq!(server.submit(5, frame).unwrap(), SubmitResult::Accepted);
    }
    assert_eq!(
        server.ready_units(),
        0,
        "a failed stream's queued frames are not ready work"
    );

    // First tick after the failure surfaces the error...
    let err = server.tick().unwrap_err();
    assert!(matches!(err, ServeError::Reuse(_)), "{err}");
    assert_eq!(server.frames_completed(), done_before);

    // ...and later ticks neither re-report it nor resume the stream.
    for _ in 0..2 {
        let stats = server.tick().unwrap();
        assert_eq!(stats.frames, 0, "failed stream must not execute frames");
    }
    assert_eq!(server.frames_completed(), done_before);
    assert!(server.stream_failed(5));
    let snap = server.snapshot();
    assert!(snap.streams.iter().any(|s| s.id == 5 && s.failed));
}

/// Regression (LRU clock): rejected submits must not refresh a stream's
/// LRU position. A spammer whose queue is full would otherwise always
/// look recently used and push healthy streams out of the pool.
#[test]
fn rejected_submits_do_not_refresh_the_lru_clock() {
    let net = mlp();
    let model = Arc::new(CompiledModel::new(&net, &ReuseConfig::uniform(16)));
    let mut server = StreamServer::new(
        model,
        ServerConfig::default().max_sessions(2).queue_capacity(2),
    )
    .unwrap();
    let frame = vec![0.25; 12];

    // Stream 0 fills its queue, then stream 1 submits once (making 0 the
    // least recently *accepted*).
    assert_eq!(server.submit(0, &frame).unwrap(), SubmitResult::Accepted);
    assert_eq!(server.submit(0, &frame).unwrap(), SubmitResult::Accepted);
    assert_eq!(server.submit(1, &frame).unwrap(), SubmitResult::Accepted);

    // Stream 0 spams its full queue: every submit is rejected.
    for _ in 0..5 {
        assert_eq!(server.submit(0, &frame).unwrap(), SubmitResult::QueueFull);
    }
    assert_eq!(server.rejected_queue_full(), 5);

    // Stream 2 arrives at the pool cap: the spammer (stream 0), not the
    // healthy stream 1, must be the LRU eviction victim.
    assert_eq!(server.submit(2, &frame).unwrap(), SubmitResult::Accepted);
    assert!(
        !server.contains(0),
        "queue-full spammer must be the eviction victim"
    );
    assert!(server.contains(1), "healthy stream must survive");
    assert!(server.contains(2));
    assert_eq!(server.evictions(), 1);
}

/// Signature cache at capacity 0: the lookup plumbing runs but can never
/// hit, so serving must degrade to exactly the cache-off behavior —
/// outputs and metrics bit-identical to standalone sessions of a
/// cache-off model.
#[test]
fn capacity_zero_signature_cache_serves_bit_identically() {
    let net = mlp();
    let on = Arc::new(CompiledModel::new(
        &net,
        &ReuseConfig::uniform(16)
            .signature_cache(true)
            .signature_cache_capacity(0),
    ));
    let off = Arc::new(CompiledModel::new(&net, &ReuseConfig::uniform(16)));
    let streams = vec![
        (1u64, walk(20, 12, 0.08, 61)),
        (2u64, walk(20, 12, 0.12, 62)),
    ];
    let mut server = StreamServer::new(
        Arc::clone(&on),
        ServerConfig::default().queue_capacity(4).batch_max(2),
    )
    .unwrap();
    let collected = run_server(&mut server, &streams, 3);
    check_against_standalone(&off, &server, &streams, &collected);
    let snap = server.snapshot();
    assert!(snap.signature.lookups > 0, "plumbing is alive");
    assert_eq!(snap.signature.hits, 0);
    assert_eq!(snap.signature.adoptions, 0);
    assert_eq!(snap.signature.inserts, 0);
}

/// An evicted stream's cache entries must not leak stale baselines into
/// its replacement: a successor with dissimilar frames misses the cache
/// (signatures differ) and stays bit-identical to a cache-off run.
#[test]
fn evicted_streams_cache_entries_do_not_leak_into_replacement() {
    let net = mlp();
    let on = Arc::new(CompiledModel::new(
        &net,
        &ReuseConfig::uniform(16).signature_cache(true),
    ));
    let off = Arc::new(CompiledModel::new(&net, &ReuseConfig::uniform(16)));
    let mut server =
        StreamServer::new(Arc::clone(&on), ServerConfig::default().max_sessions(1)).unwrap();

    // Stream 0 warms up and publishes its cold-start baselines.
    let warm = walk(8, 12, 0.06, 1);
    for frame in &warm {
        server.submit(0, frame).unwrap();
        server.tick().unwrap();
        server.drain_outputs(0, |_| {});
    }
    assert!(
        server.snapshot().signature.inserts > 0,
        "baselines published"
    );

    // Stream 1 (negated frames: every signature bit flips) evicts it.
    let replacement: Vec<Vec<f32>> = warm
        .iter()
        .map(|f| f.iter().map(|v| -v).collect())
        .collect();
    let mut outs = Vec::new();
    for frame in &replacement {
        server.submit(1, frame).unwrap();
        server.tick().unwrap();
        server.drain_outputs(1, |out| outs.push(out.to_vec()));
    }
    assert!(!server.contains(0));
    assert_eq!(server.evictions(), 1);

    let session = server.session(1).expect("replacement resident");
    assert_eq!(
        session.signature_stats().adoptions,
        0,
        "dissimilar replacement must not adopt the evicted stream's baselines"
    );

    // Bit-identical to a fresh standalone session on a cache-off model.
    let mut alone = off.new_session();
    let mut reference = Vec::new();
    assert_eq!(outs.len(), replacement.len());
    for (frame, out) in replacement.iter().zip(outs.iter()) {
        alone.execute_into(frame, &mut reference).unwrap();
        assert_bits_eq(out, &reference);
    }
    assert_eq!(session.metrics(), alone.metrics());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property: a server over a cache-enabled model with capacity 0 is
    /// bit-identical — outputs and `EngineMetrics` — to standalone
    /// sessions of a cache-off model, under random interleavings.
    #[test]
    fn capacity_zero_cache_matches_cache_off_standalone(
        seed_a in 0u64..1000,
        seed_b in 1000u64..2000,
        queue_capacity in 1usize..5,
        batch_max in 1usize..4,
        chunk in 1usize..4,
    ) {
        let net = mlp();
        let on = Arc::new(CompiledModel::new(
            &net,
            &ReuseConfig::uniform(16)
                .signature_cache(true)
                .signature_cache_capacity(0),
        ));
        let off = Arc::new(CompiledModel::new(&net, &ReuseConfig::uniform(16)));
        let streams = vec![
            (11u64, walk(12, 12, 0.08, seed_a)),
            (22u64, walk(12, 12, 0.15, seed_b)),
        ];
        let mut server = StreamServer::new(
            Arc::clone(&on),
            ServerConfig::default()
                .queue_capacity(queue_capacity)
                .batch_max(batch_max),
        )
        .unwrap();
        let collected = run_server(&mut server, &streams, chunk);
        for ((id, stream), outs) in streams.iter().zip(collected.iter()) {
            prop_assert_eq!(outs.len(), stream.len());
            let mut alone = off.new_session();
            let mut reference = Vec::new();
            for (frame, out) in stream.iter().zip(outs.iter()) {
                alone.execute_into(frame, &mut reference).unwrap();
                prop_assert_eq!(out.len(), reference.len());
                for (x, y) in out.iter().zip(reference.iter()) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
            let session = server.session(*id).expect("stream resident");
            prop_assert_eq!(session.metrics(), alone.metrics());
        }
    }

    /// Property: under random stream contents, queue bounds, batch sizes,
    /// and submit chunking, the server's per-stream outputs and
    /// `EngineMetrics` are bit-identical to standalone sessions.
    #[test]
    fn server_matches_standalone_under_random_interleavings(
        seed_a in 0u64..1000,
        seed_b in 1000u64..2000,
        step_a in 1u32..30,
        step_b in 1u32..30,
        clusters in 4usize..33,
        queue_capacity in 1usize..5,
        batch_max in 1usize..4,
        chunk in 1usize..4,
    ) {
        let net = mlp();
        let model = Arc::new(CompiledModel::new(&net, &ReuseConfig::uniform(clusters)));
        let streams = vec![
            (11u64, walk(15, 12, step_a as f32 / 100.0, seed_a)),
            (22u64, walk(15, 12, step_b as f32 / 100.0, seed_b)),
        ];
        let mut server = StreamServer::new(
            Arc::clone(&model),
            ServerConfig::default()
                .queue_capacity(queue_capacity)
                .batch_max(batch_max),
        )
        .unwrap();
        let collected = run_server(&mut server, &streams, chunk);
        for ((id, stream), outs) in streams.iter().zip(collected.iter()) {
            prop_assert_eq!(outs.len(), stream.len());
            let mut alone = model.new_session();
            let mut reference = Vec::new();
            for (frame, out) in stream.iter().zip(outs.iter()) {
                alone.execute_into(frame, &mut reference).unwrap();
                prop_assert_eq!(out.len(), reference.len());
                for (x, y) in out.iter().zip(reference.iter()) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
            let session = server.session(*id).expect("stream resident");
            prop_assert_eq!(session.metrics(), alone.metrics());
        }
    }
}

/// Empty-histogram contract, end to end: an idle server (no frames ever
/// submitted) must report an all-zero latency block — zero count AND zero
/// quantiles, never NaN or a sentinel — both in the snapshot struct and in
/// its JSON rendering.
#[test]
fn idle_server_snapshot_reports_zero_latency() {
    let model = Arc::new(CompiledModel::new(&mlp(), &ReuseConfig::uniform(32)));
    let server = StreamServer::new(model, ServerConfig::default()).unwrap();
    let snap = server.snapshot();
    assert_eq!(snap.latency_count, 0);
    assert_eq!(snap.p50_ns, 0);
    assert_eq!(snap.p99_ns, 0);
    assert_eq!(snap.p999_ns, 0);
    assert_eq!(snap.max_ns, 0);
    let json = snap.to_json();
    assert!(
        json.contains(
            "\"latency_ns\": {\"count\": 0, \"p50\": 0, \"p99\": 0, \"p999\": 0, \"max\": 0}"
        ),
        "idle latency block must be all zeros: {json}"
    );
}

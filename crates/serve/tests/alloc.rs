//! Zero-allocation contract of the serving dispatch loop.
//!
//! A counting global allocator wraps the system allocator; once every
//! stream is past calibration and the server's recycling lists are primed,
//! the steady-state submit → tick → drain cycle (feed-forward model,
//! serial dispatch) must not allocate: ingress frames come from the
//! recycled frame list, outputs from the recycled output list, and each
//! session's intermediates from its own buffer pool.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use reuse_core::{CompiledModel, ReuseConfig};
use reuse_nn::{init::Rng64, Activation, NetworkBuilder};
use reuse_serve::{ServerConfig, StreamServer, SubmitResult};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_dispatch_loop_is_allocation_free() {
    let net = NetworkBuilder::new("serve-steady", 32)
        .fully_connected(64, Activation::Relu)
        .fully_connected(48, Activation::Relu)
        .fully_connected(10, Activation::Identity)
        .build()
        .unwrap();
    let model = Arc::new(CompiledModel::new(&net, &ReuseConfig::uniform(16)));
    let mut server = StreamServer::new(
        model,
        ServerConfig::default().queue_capacity(4).batch_max(4),
    )
    .unwrap();

    let mut rng = Rng64::new(9);
    let mut frames: Vec<Vec<f32>> = (0..3)
        .map(|_| (0..32).map(|_| rng.uniform(0.9)).collect())
        .collect();

    // Warm-up: create the streams, run calibration + the state-initializing
    // first reuse frame, and prime every recycling list (ingress frames,
    // outputs, session pools, `out` capacities).
    for _ in 0..4 {
        for (s, frame) in frames.iter().enumerate() {
            assert_eq!(
                server.submit(s as u64, frame).unwrap(),
                SubmitResult::Accepted
            );
        }
        server.tick().unwrap();
        for s in 0..frames.len() as u64 {
            server.drain_outputs(s, |out| assert_eq!(out.len(), 10));
        }
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10 {
        // Drift a few inputs per stream so the incremental path does real
        // correction work, not just the all-reused fast case.
        for frame in &mut frames {
            for _ in 0..8 {
                let i = (rng.next_u64() % 32) as usize;
                frame[i] = (frame[i] + rng.uniform(0.5)).clamp(-1.0, 1.0);
            }
        }
        for (s, frame) in frames.iter().enumerate() {
            assert_eq!(
                server.submit(s as u64, frame).unwrap(),
                SubmitResult::Accepted
            );
        }
        server.tick().unwrap();
        for s in 0..frames.len() as u64 {
            let drained = server.drain_outputs(s, |out| assert_eq!(out.len(), 10));
            assert_eq!(drained, 1);
        }
    }
    let allocations = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocations, 0,
        "steady-state dispatch cycles allocated {allocations} times"
    );
}

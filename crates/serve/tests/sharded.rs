//! Sharded-tier semantics: a [`ShardedServer`] over any shard count must
//! be bit-identical per stream to a single-shard [`StreamServer`] (and so
//! to standalone sessions); deadline scheduling and the shared signature
//! cache must survive sharding and LRU churn.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use reuse_core::{CompiledModel, ReuseConfig};
use reuse_nn::{init::Rng64, Activation, Network, NetworkBuilder};
use reuse_serve::{
    ServerConfig, ShardWorkers, ShardedServer, StreamServer, SubmitOptions, SubmitResult,
};

/// A smooth random walk of frames, mimicking consecutive input windows.
fn walk(len: usize, dim: usize, step: f32, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = Rng64::new(seed);
    let mut frame: Vec<f32> = (0..dim).map(|_| rng.uniform(0.5)).collect();
    (0..len)
        .map(|_| {
            for v in &mut frame {
                *v = (*v + rng.uniform(step)).clamp(-1.0, 1.0);
            }
            frame.clone()
        })
        .collect()
}

fn mlp() -> Network {
    NetworkBuilder::new("shard-mlp", 12)
        .seed(5)
        .fully_connected(24, Activation::Relu)
        .fully_connected(16, Activation::Relu)
        .fully_connected(4, Activation::Identity)
        .build()
        .unwrap()
}

fn assert_bits_eq(a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}");
    }
}

/// Pushes every stream through a sharded server in passive (tick_all)
/// mode and returns the collected outputs per stream.
fn run_sharded(
    server: &ShardedServer,
    streams: &[(u64, Vec<Vec<f32>>)],
    chunk: usize,
) -> Vec<Vec<Vec<f32>>> {
    let mut collected: Vec<Vec<Vec<f32>>> = streams.iter().map(|_| Vec::new()).collect();
    let n_frames = streams.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
    let mut cursor = 0usize;
    while cursor < n_frames {
        for (s, (id, stream)) in streams.iter().enumerate() {
            for frame in stream.iter().skip(cursor).take(chunk) {
                loop {
                    match server.submit(*id, frame).unwrap() {
                        SubmitResult::Accepted => break,
                        SubmitResult::QueueFull => {
                            server.tick_all().unwrap();
                            server.drain_outputs(*id, |out| collected[s].push(out.to_vec()));
                        }
                        other => panic!("healthy stream must not {other:?}"),
                    }
                }
            }
        }
        cursor += chunk;
        server.tick_all().unwrap();
        for (s, (id, _)) in streams.iter().enumerate() {
            server.drain_outputs(*id, |out| collected[s].push(out.to_vec()));
        }
    }
    while server.ready_units() > 0 {
        server.tick_all().unwrap();
        for (s, (id, _)) in streams.iter().enumerate() {
            server.drain_outputs(*id, |out| collected[s].push(out.to_vec()));
        }
    }
    collected
}

#[test]
fn sharded_streams_match_standalone_sessions() {
    let model = Arc::new(CompiledModel::new(&mlp(), &ReuseConfig::uniform(32)));
    let streams: Vec<(u64, Vec<Vec<f32>>)> = (0..6)
        .map(|s| (s * 131, walk(30, 12, 0.1, 500 + s)))
        .collect();
    let server = ShardedServer::new(Arc::clone(&model), ServerConfig::default(), 3).unwrap();
    let collected = run_sharded(&server, &streams, 2);
    for ((id, stream), outs) in streams.iter().zip(collected.iter()) {
        assert_eq!(outs.len(), stream.len(), "stream {id}");
        let mut alone = model.new_session();
        let mut reference = Vec::new();
        for (frame, out) in stream.iter().zip(outs.iter()) {
            alone.execute_into(frame, &mut reference).unwrap();
            assert_bits_eq(out, &reference);
        }
    }
    let snap = server.snapshot();
    assert_eq!(snap.frames_completed(), 180);
    assert_eq!(snap.latency_count, 180);
    assert_eq!(snap.active_streams(), 6);
    assert!(snap.to_json().contains("\"per_shard\""));
}

#[test]
fn worker_threads_drive_frames_to_completion() {
    let model = Arc::new(CompiledModel::new(&mlp(), &ReuseConfig::uniform(32)));
    let server =
        Arc::new(ShardedServer::new(Arc::clone(&model), ServerConfig::default(), 2).unwrap());
    let workers = ShardWorkers::start(Arc::clone(&server));

    let streams: Vec<(u64, Vec<Vec<f32>>)> = (0..4)
        .map(|s| (s * 977, walk(20, 12, 0.1, 40 + s)))
        .collect();
    let mut collected: Vec<Vec<Vec<f32>>> = streams.iter().map(|_| Vec::new()).collect();
    for (s, (id, stream)) in streams.iter().enumerate() {
        for frame in stream {
            loop {
                match server.submit(*id, frame).unwrap() {
                    SubmitResult::Accepted => break,
                    SubmitResult::QueueFull => {
                        server.drain_outputs(*id, |out| collected[s].push(out.to_vec()));
                        std::thread::sleep(Duration::from_micros(100));
                    }
                    other => panic!("healthy stream must not {other:?}"),
                }
            }
        }
    }
    // Workers tick in the background; wait for everything to finish.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        for (s, (id, _)) in streams.iter().enumerate() {
            server.drain_outputs(*id, |out| collected[s].push(out.to_vec()));
        }
        if collected.iter().map(Vec::len).sum::<usize>() == 4 * 20 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "workers stalled");
        std::thread::sleep(Duration::from_micros(200));
    }
    assert!(workers.take_errors().is_empty());
    drop(workers);

    for ((_, stream), outs) in streams.iter().zip(collected.iter()) {
        let mut alone = model.new_session();
        let mut reference = Vec::new();
        for (frame, out) in stream.iter().zip(outs.iter()) {
            alone.execute_into(frame, &mut reference).unwrap();
            assert_bits_eq(out, &reference);
        }
    }
}

/// Satellite 6 regression: the PR 7 signature cache hangs off the shared
/// `CompiledModel`, so it must keep working across shards and across LRU
/// eviction — a stream evicted from one shard and similar content arriving
/// on a *different* shard must still hit the cached signatures.
#[test]
fn signature_cache_is_shared_across_shards_and_survives_eviction() {
    let model = Arc::new(CompiledModel::new(
        &mlp(),
        &ReuseConfig::uniform(32).signature_cache(true),
    ));
    // Per-shard pool of 1 session so every new stream on a shard evicts
    // the previous one.
    let server = ShardedServer::new(
        Arc::clone(&model),
        ServerConfig::default().max_sessions(1),
        2,
    )
    .unwrap();

    // Two ids on *different* shards, plus churn ids to force eviction.
    let ids: Vec<u64> = (0..64).collect();
    let a = ids[0];
    let b = *ids
        .iter()
        .find(|&&id| server.shard_of(id) != server.shard_of(a))
        .expect("some id lands on the other shard");
    let churn_a = *ids
        .iter()
        .find(|&&id| id != a && id != b && server.shard_of(id) == server.shard_of(a))
        .expect("another id on a's shard");

    let frames = walk(12, 12, 0.02, 999);
    // Warm the cache from stream `a` (shard of a).
    for frame in &frames {
        server.submit(a, frame).unwrap();
        server.tick_all().unwrap();
    }
    server.drain_outputs(a, |_| {});
    // Evict `a` by creating another stream on its shard (pool cap 1).
    server.submit(churn_a, &frames[0]).unwrap();
    server.tick_all().unwrap();
    assert!(!server.contains(a), "a must have been evicted");

    // The same content arriving on the *other* shard must adopt cached
    // baselines inserted by `a` — the cache lives on the CompiledModel,
    // not in any shard's session pool.
    for frame in &frames {
        server.submit(b, frame).unwrap();
        server.tick_all().unwrap();
    }
    let adoptions = server.snapshot().shards[server.shard_of(b)]
        .signature
        .adoptions;
    assert!(
        adoptions > 0,
        "stream {b} on shard {} must adopt signatures published by evicted stream {a} on shard {}",
        server.shard_of(b),
        server.shard_of(a),
    );
}

#[test]
fn fresh_deadline_frames_expire_instead_of_executing() {
    let model = Arc::new(CompiledModel::new(&mlp(), &ReuseConfig::uniform(32)));
    let mut server = StreamServer::new(Arc::clone(&model), ServerConfig::default()).unwrap();
    let frame = vec![0.25f32; 12];
    // Fresh server: no service-time estimate yet, so ingress projection is
    // disabled and the frame is accepted despite its hopeless deadline.
    let opts = SubmitOptions::default()
        .with_deadline(Duration::ZERO)
        .tagged(77);
    assert_eq!(
        server.submit_with(9, &frame, opts).unwrap(),
        SubmitResult::Accepted
    );
    std::thread::sleep(Duration::from_millis(1));
    server.tick().unwrap();
    assert_eq!(server.expired_frames(), 1);
    assert_eq!(server.frames_completed(), 0);
    let mut tags = Vec::new();
    server.drain_expired(9, |tag| tags.push(tag));
    assert_eq!(tags, vec![77]);
    assert_eq!(server.drain_outputs(9, |_| panic!("no output")), 0);
    let snap = server.snapshot();
    assert_eq!(snap.expired, 1);
    assert_eq!(snap.streams[0].expired, 1);
}

#[test]
fn projected_deadline_miss_sheds_at_ingress() {
    let model = Arc::new(CompiledModel::new(&mlp(), &ReuseConfig::uniform(32)));
    let mut server = StreamServer::new(Arc::clone(&model), ServerConfig::default()).unwrap();
    let frame = vec![0.25f32; 12];
    // Establish a service-time estimate.
    server.submit(3, &frame).unwrap();
    server.tick().unwrap();
    assert!(server.service_ewma_ns() > 0.0);
    // A deadline of zero slack is now provably unmeetable at ingress.
    let opts = SubmitOptions::default().with_deadline(Duration::ZERO);
    assert_eq!(
        server.submit_with(3, &frame, opts).unwrap(),
        SubmitResult::DeadlineShed
    );
    assert_eq!(server.deadline_shed_frames(), 1);
    // A generous deadline is accepted.
    let opts = SubmitOptions::default().with_deadline(Duration::from_secs(60));
    assert_eq!(
        server.submit_with(3, &frame, opts).unwrap(),
        SubmitResult::Accepted
    );
    server.tick().unwrap();
    assert_eq!(server.frames_completed(), 2);
    let snap = server.snapshot();
    assert_eq!(snap.deadline_shed, 1);
    assert_eq!(snap.streams[0].deadline_shed, 1);
}

#[test]
fn priority_lane_preserves_outputs_and_orders_dispatch() {
    let model = Arc::new(CompiledModel::new(&mlp(), &ReuseConfig::uniform(32)));
    let streams: Vec<(u64, Vec<Vec<f32>>)> =
        (0..3).map(|s| (s, walk(10, 12, 0.1, 60 + s))).collect();

    // Reference: all-normal submissions.
    let mut plain = StreamServer::new(Arc::clone(&model), ServerConfig::default()).unwrap();
    let mut plain_out: Vec<Vec<Vec<f32>>> = streams.iter().map(|_| Vec::new()).collect();
    // Priority run: stream 1 submits high-priority.
    let mut prio = StreamServer::new(Arc::clone(&model), ServerConfig::default()).unwrap();
    let mut prio_out: Vec<Vec<Vec<f32>>> = streams.iter().map(|_| Vec::new()).collect();

    for t in 0..10 {
        for (s, (id, stream)) in streams.iter().enumerate() {
            plain.submit(*id, &stream[t]).unwrap();
            let opts = if s == 1 {
                SubmitOptions::default().high_priority()
            } else {
                SubmitOptions::default()
            };
            assert_eq!(
                prio.submit_with(*id, &stream[t], opts).unwrap(),
                SubmitResult::Accepted
            );
        }
        plain.tick().unwrap();
        prio.tick().unwrap();
        for (s, (id, _)) in streams.iter().enumerate() {
            plain.drain_outputs(*id, |out| plain_out[s].push(out.to_vec()));
            prio.drain_outputs(*id, |out| prio_out[s].push(out.to_vec()));
        }
    }
    // Scheduling order must never change results.
    for (a, b) in plain_out.iter().zip(prio_out.iter()) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_bits_eq(x, y);
        }
    }
    assert_eq!(prio.frames_completed(), 30);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Property: per-stream outputs from a sharded server are bit-identical
    /// to a single-shard `StreamServer` over the same submissions, for any
    /// shard count, queue shape, and interleaving chunk.
    #[test]
    fn sharded_matches_single_shard(
        shards in 1usize..5,
        queue_capacity in 1usize..5,
        batch_max in 1usize..4,
        chunk in 1usize..4,
        seed in 0u64..10_000,
    ) {
        let model = Arc::new(CompiledModel::new(&mlp(), &ReuseConfig::uniform(16)));
        let streams: Vec<(u64, Vec<Vec<f32>>)> = (0..5)
            .map(|s| (s * 7919, walk(12, 12, 0.1, seed * 31 + s)))
            .collect();
        let config = ServerConfig::default()
            .queue_capacity(queue_capacity)
            .batch_max(batch_max);

        let sharded =
            ShardedServer::new(Arc::clone(&model), config.clone(), shards).unwrap();
        let sharded_out = run_sharded(&sharded, &streams, chunk);

        let single = ShardedServer::new(Arc::clone(&model), config, 1).unwrap();
        let single_out = run_sharded(&single, &streams, chunk);

        for ((a, b), (id, _)) in sharded_out.iter().zip(single_out.iter()).zip(streams.iter()) {
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                prop_assert_eq!(x.len(), y.len(), "stream {}", id);
                for (p, q) in x.iter().zip(y.iter()) {
                    prop_assert_eq!(p.to_bits(), q.to_bits());
                }
            }
        }
    }

    /// Satellite 3: an open-loop burst far beyond queue capacity must keep
    /// exact books — per stream and aggregate, every submit attempt is
    /// accounted as accepted, queue-full, or shed, and every accepted frame
    /// as completed, expired, or still queued.
    #[test]
    fn overload_accounting_balances_exactly(
        queue_capacity in 1usize..6,
        batch_max in 1usize..4,
        burst in 8usize..40,
        ticks_between in 0usize..3,
        seed in 0u64..10_000,
    ) {
        let model = Arc::new(CompiledModel::new(&mlp(), &ReuseConfig::uniform(16)));
        let mut server = StreamServer::new(
            Arc::clone(&model),
            ServerConfig::default()
                .queue_capacity(queue_capacity)
                .batch_max(batch_max),
        )
        .unwrap();
        let mut rng = Rng64::new(seed);
        let ids = [11u64, 23, 37];
        let frames: Vec<Vec<Vec<f32>>> =
            ids.iter().map(|&id| walk(burst, 12, 0.1, seed ^ id)).collect();
        let mut attempts = vec![0u64; ids.len()];
        let mut accepted = vec![0u64; ids.len()];
        let mut drained = vec![0u64; ids.len()];

        // Open-loop: submit the whole burst regardless of acceptance,
        // ticking only occasionally, so queues overflow. Index-driven on
        // purpose: frame t of every stream goes in before frame t+1 of any.
        #[allow(clippy::needless_range_loop)]
        for t in 0..burst {
            for (s, &id) in ids.iter().enumerate() {
                attempts[s] += 1;
                match server.submit(id, &frames[s][t]).unwrap() {
                    SubmitResult::Accepted => accepted[s] += 1,
                    SubmitResult::QueueFull | SubmitResult::Shed
                    | SubmitResult::DeadlineShed => {}
                }
            }
            if ticks_between > 0 && (rng.uniform(1.0) > 0.0) && t % ticks_between == 0 {
                server.tick().unwrap();
                for (s, &id) in ids.iter().enumerate() {
                    server.drain_outputs(id, |_| drained[s] += 1);
                }
            }
        }
        server.tick().unwrap();
        for (s, &id) in ids.iter().enumerate() {
            server.drain_outputs(id, |_| drained[s] += 1);
        }

        let snap = server.snapshot();
        let mut total_attempts = 0u64;
        for (s, &id) in ids.iter().enumerate() {
            let st = snap.streams.iter().find(|st| st.id == id).unwrap();
            // Every attempt is attributed to exactly one outcome.
            prop_assert_eq!(
                attempts[s],
                st.frames_in + st.rejected_queue_full + st.shed + st.deadline_shed,
                "stream {} attempt accounting", id
            );
            prop_assert_eq!(accepted[s], st.frames_in);
            // Every accepted frame is completed, expired, or still queued.
            prop_assert_eq!(
                st.frames_in,
                st.frames_done + st.expired + st.queue_len as u64,
                "stream {} acceptance accounting", id
            );
            total_attempts += attempts[s];
        }
        prop_assert_eq!(
            total_attempts,
            snap.frames_submitted + snap.rejected_queue_full + snap.shed + snap.deadline_shed
        );
        prop_assert_eq!(
            snap.frames_submitted,
            snap.frames_completed + snap.expired + server.pending() as u64
        );
    }
}

/// Empty-histogram contract across the sharded tier: idle shards merge to
/// an all-zero latency view, and every per-shard snapshot renders an
/// all-zero `latency_ns` JSON block.
#[test]
fn idle_sharded_snapshot_reports_zero_latency() {
    let model = Arc::new(CompiledModel::new(&mlp(), &ReuseConfig::uniform(32)));
    let server = ShardedServer::new(model, ServerConfig::default(), 3).unwrap();
    let snap = server.snapshot();
    assert_eq!(snap.latency_count, 0);
    assert_eq!(snap.p50_ns, 0);
    assert_eq!(snap.p99_ns, 0);
    assert_eq!(snap.p999_ns, 0);
    assert_eq!(snap.max_ns, 0);
    assert_eq!(snap.shards.len(), 3);
    for shard in &snap.shards {
        assert_eq!(shard.latency_count, 0);
        assert_eq!(
            (shard.p50_ns, shard.p99_ns, shard.p999_ns, shard.max_ns),
            (0, 0, 0, 0)
        );
        assert!(shard.to_json().contains(
            "\"latency_ns\": {\"count\": 0, \"p50\": 0, \"p99\": 0, \"p999\": 0, \"max\": 0}"
        ));
    }
}

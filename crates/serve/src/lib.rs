//! Multi-stream serving runtime for the reuse engine.
//!
//! The paper's deployment story (Section V) is one model serving many
//! concurrent input streams — think one speech model decoding many live
//! microphones, or one vision model watching many cameras. Temporal reuse
//! is *per stream*: frame similarity only exists between consecutive
//! frames of the same source, so each stream needs its own
//! [`ReuseSession`] (quantized-input memory, buffered partial outputs,
//! metrics), while the expensive immutable artifacts — topology, packed
//! weight panels, the compiled execution plan — live once in a shared
//! [`CompiledModel`].
//!
//! [`StreamServer`] packages that split into a runtime:
//!
//! * **Session pool** — sessions are created lazily on a stream's first
//!   [`submit`](StreamServer::submit) and capped at
//!   [`ServerConfig::max_sessions`]; past the cap the least-recently-used
//!   stream is evicted (its buffered state reset, its buffers released).
//! * **Bounded ingress queues + backpressure** — each stream queues at
//!   most [`ServerConfig::queue_capacity`] frames; submits report
//!   [`SubmitResult::QueueFull`] / [`SubmitResult::Shed`] instead of
//!   blocking or growing without bound. Shedding kicks in when a stream's
//!   drift watchdog has auto-disabled reuse (the stream runs at
//!   full-precision cost) and its queue is past
//!   [`ServerConfig::shed_watermark`].
//! * **Work-stealing dispatch** — each [`tick`](StreamServer::tick) fans
//!   per-stream batches out across the scoped thread pool with dynamic
//!   scheduling; sessions share no mutable state, so per-stream results
//!   are bit-identical to standalone execution under any interleaving and
//!   any worker count.
//! * **Sharding + deadline scheduling** — [`ShardedServer`] hashes
//!   streams across N independent shards (each its own session pool,
//!   queues, and histogram over one shared model) driven by dedicated
//!   per-shard worker threads ([`ShardWorkers`]); submits can carry a
//!   deadline and priority lane ([`SubmitOptions`]), with
//!   projected-deadline-miss shedding at ingress.
//! * **Telemetry** — aggregate throughput, submit-to-completion latency
//!   (preallocated lock-free [`LatencyHistogram`]), backpressure and
//!   eviction counters, and per-stream hit rates, exported as a
//!   [`ServerSnapshot`] with hand-rolled JSON.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use reuse_core::{CompiledModel, ReuseConfig};
//! use reuse_serve::{ServerConfig, StreamServer, SubmitResult};
//!
//! # fn tiny_network() -> reuse_nn::Network {
//! #     use reuse_nn::{Activation, NetworkBuilder};
//! #     NetworkBuilder::new("demo", 4)
//! #         .fully_connected(2, Activation::Identity)
//! #         .build()
//! #         .unwrap()
//! # }
//! let model = Arc::new(CompiledModel::new(&tiny_network(), &ReuseConfig::uniform(8)));
//! let mut server = StreamServer::new(model, ServerConfig::default())?;
//!
//! // Two independent camera feeds share one model.
//! assert_eq!(server.submit(0, &[0.1, 0.2, 0.3, 0.4])?, SubmitResult::Accepted);
//! assert_eq!(server.submit(1, &[0.5, 0.6, 0.7, 0.8])?, SubmitResult::Accepted);
//! server.tick()?;
//! let drained = server.drain_outputs(0, |out| assert_eq!(out.len(), 2));
//! assert_eq!(drained, 1);
//! # Ok::<(), reuse_serve::ServeError>(())
//! ```

#![warn(missing_docs)]

mod error;
mod histogram;
mod server;
mod shard;
mod snapshot;

pub use error::ServeError;
pub use histogram::LatencyHistogram;
pub use server::{Priority, ServerConfig, StreamServer, SubmitOptions, SubmitResult, TickStats};
pub use shard::{default_shards, ShardWorkers, ShardedServer, ShardedSnapshot};
pub use snapshot::{ServerSnapshot, StreamSnapshot};

// Re-exported so downstream code can name the shared-model types without a
// direct reuse-core dependency.
pub use reuse_core::{CompiledModel, ReuseSession};

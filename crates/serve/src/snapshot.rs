//! Owned, serializable snapshots of server state.
//!
//! Mirrors the hand-rolled JSON style of
//! `reuse_core`'s `TelemetrySnapshot` — no external serialization
//! dependencies (the build environment pins an offline registry).

use std::fmt::Write as _;

use reuse_core::{LayerPolicyState, SignatureStats};

/// Aggregate and per-stream server state at one point in time. Built by
/// [`crate::StreamServer::snapshot`]; owns all its data.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerSnapshot {
    /// Network name of the shared compiled model.
    pub network: String,
    /// Streams currently holding a session in the pool.
    pub active_streams: usize,
    /// Session-pool cap.
    pub max_sessions: usize,
    /// Scheduling ticks run.
    pub ticks: u64,
    /// Frames accepted across all streams.
    pub frames_submitted: u64,
    /// Frames completed across all streams.
    pub frames_completed: u64,
    /// Submits rejected because the stream's ingress queue was full.
    pub rejected_queue_full: u64,
    /// Submits load-shed on degraded streams.
    pub shed: u64,
    /// Submits rejected by the projected-deadline-miss policy.
    pub deadline_shed: u64,
    /// Queued frames dropped at execution time (deadline already passed).
    pub expired: u64,
    /// Streams evicted by the LRU session-pool cap.
    pub evictions: u64,
    /// Queued frames discarded with their evicted stream.
    pub evicted_frames: u64,
    /// Completed outputs overwritten because callers stopped draining.
    pub outputs_dropped: u64,
    /// Samples in the latency histogram.
    pub latency_count: u64,
    /// Median submit-to-completion latency (log-linear bucket edge, ns).
    pub p50_ns: u64,
    /// 99th-percentile submit-to-completion latency (ns).
    pub p99_ns: u64,
    /// 99.9th-percentile submit-to-completion latency (ns).
    pub p999_ns: u64,
    /// Largest exact latency sample (ns).
    pub max_ns: u64,
    /// EWMA of the per-frame service time feeding the deadline projection
    /// (ns; `0.0` before the first completed frame).
    pub service_ewma_ns: f64,
    /// Cross-stream signature-cache counters summed over the pool's live
    /// sessions (all zero when the model compiles the cache out).
    pub signature: SignatureStats,
    /// Active reuse-policy name (`"static"`, `"adaptive"`, `"tuned"`).
    pub policy: String,
    /// Per-layer policy state aggregated over the pool's live sessions:
    /// controller counters summed, step/scale/threshold averaged (the
    /// compiled resolution when no session is live).
    pub policy_layers: Vec<LayerPolicyState>,
    /// Per-stream detail, in pool order.
    pub streams: Vec<StreamSnapshot>,
}

/// One stream's state within a [`ServerSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSnapshot {
    /// Caller-chosen stream id.
    pub id: u64,
    /// Frames accepted into this stream's queue.
    pub frames_in: u64,
    /// Frames completed for this stream.
    pub frames_done: u64,
    /// Frames currently queued.
    pub queue_len: usize,
    /// This stream's submits rejected because its queue was full.
    pub rejected_queue_full: u64,
    /// This stream's submits load-shed while degraded.
    pub shed: u64,
    /// This stream's submits rejected by the projected-deadline-miss
    /// policy.
    pub deadline_shed: u64,
    /// This stream's queued frames dropped with an already-passed
    /// deadline.
    pub expired: u64,
    /// Whether the stream's drift watchdog has auto-disabled reuse layers.
    pub degraded: bool,
    /// Whether the stream has a sticky execution error (skipped by ticks).
    pub failed: bool,
    /// The session's overall input similarity
    /// ([`reuse_core::EngineMetrics::overall_input_similarity`]): the
    /// fraction of layer inputs whose quantized code matched frame t-1.
    /// Formerly (mis)named `hit_rate`.
    pub input_similarity: f64,
}

/// `f64` → JSON number, `null` for non-finite values.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

/// Minimal JSON string escaping for network names.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl ServerSnapshot {
    /// Serializes the snapshot as pretty-printed JSON (hand-rolled, same
    /// style as the engine's telemetry snapshot and the bench binaries).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"network\": {},", json_str(&self.network));
        let _ = writeln!(s, "  \"active_streams\": {},", self.active_streams);
        let _ = writeln!(s, "  \"max_sessions\": {},", self.max_sessions);
        let _ = writeln!(s, "  \"ticks\": {},", self.ticks);
        let _ = writeln!(s, "  \"frames_submitted\": {},", self.frames_submitted);
        let _ = writeln!(s, "  \"frames_completed\": {},", self.frames_completed);
        let _ = writeln!(
            s,
            "  \"backpressure\": {{\"queue_full\": {}, \"shed\": {}, \"deadline_shed\": {}, \
             \"expired\": {}, \"outputs_dropped\": {}}},",
            self.rejected_queue_full,
            self.shed,
            self.deadline_shed,
            self.expired,
            self.outputs_dropped
        );
        let _ = writeln!(
            s,
            "  \"evictions\": {{\"streams\": {}, \"frames\": {}}},",
            self.evictions, self.evicted_frames
        );
        let _ = writeln!(
            s,
            "  \"latency_ns\": {{\"count\": {}, \"p50\": {}, \"p99\": {}, \"p999\": {}, \
             \"max\": {}}},",
            self.latency_count, self.p50_ns, self.p99_ns, self.p999_ns, self.max_ns
        );
        let _ = writeln!(
            s,
            "  \"service_ewma_ns\": {},",
            json_num(self.service_ewma_ns)
        );
        let _ = writeln!(
            s,
            "  \"signature_cache\": {{\"lookups\": {}, \"hits\": {}, \"adoptions\": {}, \
             \"bailouts\": {}, \"inserts\": {}}},",
            self.signature.lookups,
            self.signature.hits,
            self.signature.adoptions,
            self.signature.bailouts,
            self.signature.inserts
        );
        let _ = writeln!(s, "  \"policy\": {},", json_str(&self.policy));
        s.push_str("  \"policy_layers\": [\n");
        for (i, p) in self.policy_layers.iter().enumerate() {
            let comma = if i + 1 == self.policy_layers.len() {
                ""
            } else {
                ","
            };
            let _ = writeln!(s, "    {}{}", p.to_json(), comma);
        }
        s.push_str("  ],\n");
        s.push_str("  \"streams\": [\n");
        for (i, st) in self.streams.iter().enumerate() {
            let comma = if i + 1 == self.streams.len() { "" } else { "," };
            let _ = writeln!(
                s,
                "    {{\"id\": {}, \"frames_in\": {}, \"frames_done\": {}, \
                 \"queue_len\": {}, \"queue_full\": {}, \"shed\": {}, \
                 \"deadline_shed\": {}, \"expired\": {}, \"degraded\": {}, \
                 \"failed\": {}, \"input_similarity\": {}}}{}",
                st.id,
                st.frames_in,
                st.frames_done,
                st.queue_len,
                st.rejected_queue_full,
                st.shed,
                st.deadline_shed,
                st.expired,
                st.degraded,
                st.failed,
                json_num(st.input_similarity),
                comma
            );
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_json_is_well_formed() {
        let snap = ServerSnapshot {
            network: "kaldi\"test\"".to_string(),
            active_streams: 2,
            max_sessions: 4,
            ticks: 10,
            frames_submitted: 20,
            frames_completed: 18,
            rejected_queue_full: 1,
            shed: 0,
            deadline_shed: 3,
            expired: 1,
            evictions: 1,
            evicted_frames: 2,
            outputs_dropped: 0,
            latency_count: 18,
            p50_ns: 4095,
            p99_ns: 65535,
            p999_ns: 65535,
            max_ns: 60000,
            service_ewma_ns: 1234.5,
            signature: SignatureStats {
                lookups: 6,
                hits: 4,
                adoptions: 3,
                bailouts: 1,
                inserts: 2,
            },
            policy: "tuned".to_string(),
            policy_layers: vec![LayerPolicyState {
                name: "affine1".to_string(),
                adaptive: true,
                clusters: 32,
                step: 0.0625,
                step_scale: 2.25,
                reuse_threshold: 0.6,
                observations: 12,
                grows: 3,
                shrinks: 1,
                refreshes: 2,
            }],
            streams: vec![
                StreamSnapshot {
                    id: 0,
                    frames_in: 10,
                    frames_done: 9,
                    queue_len: 1,
                    rejected_queue_full: 0,
                    shed: 0,
                    deadline_shed: 2,
                    expired: 1,
                    degraded: false,
                    failed: false,
                    input_similarity: 0.75,
                },
                StreamSnapshot {
                    id: 7,
                    frames_in: 10,
                    frames_done: 9,
                    queue_len: 0,
                    rejected_queue_full: 1,
                    shed: 0,
                    deadline_shed: 0,
                    expired: 0,
                    degraded: true,
                    failed: true,
                    input_similarity: f64::NAN,
                },
            ],
        };
        let json = snap.to_json();
        assert!(json.contains("\\\"test\\\""));
        assert!(json.contains("\"p99\": 65535"));
        assert!(json.contains("\"p999\": 65535"));
        assert!(json.contains("\"deadline_shed\": 3"));
        assert!(json.contains("\"expired\": 1"));
        assert!(json.contains("\"service_ewma_ns\": 1234.5"));
        assert!(json.contains("\"degraded\": true"));
        assert!(json.contains("\"failed\": true"));
        assert!(json.contains(
            "\"signature_cache\": {\"lookups\": 6, \"hits\": 4, \"adoptions\": 3, \
             \"bailouts\": 1, \"inserts\": 2}"
        ));
        assert!(json.contains("\"policy\": \"tuned\""));
        assert!(json.contains("\"step_scale\": 2.250000"));
        assert!(json.contains("\"refreshes\": 2"));
        // Non-finite similarity serializes as null, not NaN.
        assert!(json.contains("\"input_similarity\": null"));
        assert!(!json.contains("NaN"));
        // Balanced braces/brackets.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in {json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // No trailing comma before the closing bracket.
        assert!(!json.contains(",\n  ]"));
    }
}

//! Sharded serving tier: N independent [`StreamServer`] shards behind one
//! façade, so aggregate throughput scales with cores instead of queueing
//! every stream behind a single `tick()` loop.
//!
//! Streams are hashed to shards by id (Fibonacci hashing — see
//! [`ShardedServer::shard_of`]), so a stream's whole life — session,
//! ingress queue, outputs, latency samples — stays on one shard and the
//! per-core working set (quantized-input memory, buffered layer outputs)
//! stays resident. Work-stealing still happens *within* a shard (the
//! shard's own [`StreamServer::tick`] fans its streams across its
//! configured dispatch workers); shards never steal from each other, which
//! keeps the bit-identity argument local: each shard is an ordinary
//! `StreamServer`, and a sharded server over any shard count produces
//! exactly the per-stream outputs of a single-shard one.
//!
//! All shards clone one `Arc<CompiledModel>`, so they share the model's
//! immutable artifacts **and** its cross-stream
//! [`SignatureCache`](reuse_core::SignatureCache): a stream evicted from
//! one shard and recreated on another still hits signatures its previous
//! incarnation (or any other stream) inserted.
//!
//! Two driving modes:
//!
//! * **Passive** — the caller ticks shards itself ([`ShardedServer::
//!   tick_all`] / [`ShardedServer::tick_shard`]). Deterministic; what the
//!   bit-identity proptests use.
//! * **Threaded** — [`ShardWorkers::start`] spawns one dedicated worker
//!   thread per shard that ticks whenever the shard has ready work and
//!   parks on a condvar otherwise. Submits and drains stay synchronous
//!   and non-blocking (they take the shard lock briefly); this is what
//!   `serve-net` and the open-loop benchmark run.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use reuse_core::CompiledModel;

use crate::error::ServeError;
use crate::histogram::LatencyHistogram;
use crate::server::{ServerConfig, StreamServer, SubmitOptions, SubmitResult, TickStats};
use crate::snapshot::ServerSnapshot;

/// One shard: a [`StreamServer`] behind a mutex, plus the condvar its
/// dedicated worker parks on.
struct Shard {
    server: Mutex<StreamServer>,
    /// Signalled on every accepted submit so a parked worker wakes.
    work: Condvar,
}

impl Shard {
    /// Locks the shard's server, recovering from a poisoned lock (a panic
    /// in one worker must not wedge every later submit into panics too).
    fn lock(&self) -> MutexGuard<'_, StreamServer> {
        self.server.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A sharded [`StreamServer`]: stream-id-hashed shards, each owning its
/// own session pool, ingress queues, and latency histogram, all sharing
/// one [`CompiledModel`] (and therefore one cross-stream signature cache).
///
/// `&self` methods take per-shard locks internally, so one
/// `Arc<ShardedServer>` can be driven from many threads: network
/// connections submitting, per-shard workers ticking, a reporter
/// snapshotting.
pub struct ShardedServer {
    shards: Vec<Shard>,
}

impl std::fmt::Debug for ShardedServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedServer")
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

/// Default shard count for a host: one shard per hardware thread, capped
/// at 8 (past that, shards outnumber the streams most workloads offer and
/// per-shard pools fragment the LRU budget for no throughput gain).
pub fn default_shards() -> usize {
    reuse_tensor::hardware_threads().clamp(1, 8)
}

impl ShardedServer {
    /// Creates `shards` independent [`StreamServer`]s over clones of one
    /// compiled model. `shards` is clamped to at least 1. The
    /// [`ServerConfig`] applies per shard — note that
    /// [`ServerConfig::max_sessions`] is therefore a *per-shard* cap
    /// (total capacity = shards × max_sessions, assuming even hashing).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] under the same conditions as
    /// [`StreamServer::new`].
    pub fn new(
        model: Arc<CompiledModel>,
        config: ServerConfig,
        shards: usize,
    ) -> Result<Self, ServeError> {
        let shards = shards.max(1);
        let mut vec = Vec::with_capacity(shards);
        for _ in 0..shards {
            vec.push(Shard {
                server: Mutex::new(StreamServer::new(Arc::clone(&model), config.clone())?),
                work: Condvar::new(),
            });
        }
        Ok(ShardedServer { shards: vec })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a stream id maps to. Fibonacci hashing (multiply by
    /// 2⁶⁴/φ, keep the high bits) so dense sequential ids — the common
    /// case for connection-assigned stream ids — spread evenly instead of
    /// all landing on `id % shards`' low-bit pattern.
    pub fn shard_of(&self, id: u64) -> usize {
        let h = id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        (h as usize) % self.shards.len()
    }

    /// Submits one frame to the owning shard's ingress queue (see
    /// [`StreamServer::submit`]). Takes that shard's lock briefly; on
    /// acceptance, wakes the shard's worker if one is parked.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Reuse`] when the frame length does not match
    /// the model's input volume.
    pub fn submit(&self, id: u64, frame: &[f32]) -> Result<SubmitResult, ServeError> {
        self.submit_with(id, frame, SubmitOptions::default())
    }

    /// [`Self::submit`] with per-frame deadline and priority options (see
    /// [`StreamServer::submit_with`]).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Reuse`] when the frame length does not match
    /// the model's input volume.
    pub fn submit_with(
        &self,
        id: u64,
        frame: &[f32],
        opts: SubmitOptions,
    ) -> Result<SubmitResult, ServeError> {
        let shard = &self.shards[self.shard_of(id)];
        let result = shard.lock().submit_with(id, frame, opts);
        if matches!(result, Ok(SubmitResult::Accepted)) {
            shard.work.notify_one();
        }
        result
    }

    /// Drains a stream's completed outputs from its owning shard (see
    /// [`StreamServer::drain_outputs`]).
    pub fn drain_outputs(&self, id: u64, f: impl FnMut(&[f32])) -> usize {
        self.shards[self.shard_of(id)].lock().drain_outputs(id, f)
    }

    /// [`Self::drain_outputs`] with each output's submission tag (see
    /// [`StreamServer::drain_outputs_tagged`]).
    pub fn drain_outputs_tagged(&self, id: u64, f: impl FnMut(u64, &[f32])) -> usize {
        self.shards[self.shard_of(id)]
            .lock()
            .drain_outputs_tagged(id, f)
    }

    /// Drains the tags of a stream's past-deadline drops (see
    /// [`StreamServer::drain_expired`]).
    pub fn drain_expired(&self, id: u64, f: impl FnMut(u64)) -> usize {
        self.shards[self.shard_of(id)].lock().drain_expired(id, f)
    }

    /// Whether a stream currently has a session in its shard's pool.
    pub fn contains(&self, id: u64) -> bool {
        self.shards[self.shard_of(id)].lock().contains(id)
    }

    /// Whether a stream has a sticky execution error.
    pub fn stream_failed(&self, id: u64) -> bool {
        self.shards[self.shard_of(id)].lock().stream_failed(id)
    }

    /// Runs one scheduling tick on shard `s` (passive driving mode).
    ///
    /// # Errors
    ///
    /// Returns the shard's first not-yet-reported stream execution error,
    /// exactly as [`StreamServer::tick`] does.
    ///
    /// # Panics
    ///
    /// Panics when `s >= self.shard_count()`.
    pub fn tick_shard(&self, s: usize) -> Result<TickStats, ServeError> {
        self.shards[s].lock().tick()
    }

    /// Ticks every shard once, in shard order (passive driving mode —
    /// deterministic, used by tests and the closed-loop bench). Returns
    /// the summed stats; if any shard reports a stream error, the first
    /// one is returned after all shards have still been ticked.
    ///
    /// # Errors
    ///
    /// Returns the first shard's first not-yet-reported stream execution
    /// error.
    pub fn tick_all(&self) -> Result<TickStats, ServeError> {
        let mut stats = TickStats::default();
        let mut first_error = None;
        for s in 0..self.shards.len() {
            match self.tick_shard(s) {
                Ok(t) => {
                    stats.frames += t.frames;
                    stats.streams += t.streams;
                }
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(stats),
        }
    }

    /// Execution units ready across all shards.
    pub fn ready_units(&self) -> usize {
        self.shards.iter().map(|s| s.lock().ready_units()).sum()
    }

    /// Queued (not yet executed) frames across all shards.
    pub fn pending(&self) -> usize {
        self.shards.iter().map(|s| s.lock().pending()).sum()
    }

    /// Frames completed across all shards (lifetime).
    pub fn frames_completed(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().frames_completed())
            .sum()
    }

    /// Merges every shard's latency histogram into one server-wide view.
    /// Allocates the result; reporting path only.
    pub fn merged_latency(&self) -> LatencyHistogram {
        let merged = LatencyHistogram::new();
        for s in &self.shards {
            merged.merge(s.lock().latency());
        }
        merged
    }

    /// Clears every shard's latency histogram (benchmark warm-up reset).
    /// Counters are untouched; only the recorded samples are discarded.
    pub fn clear_latency(&self) {
        for s in &self.shards {
            s.lock().latency().clear();
        }
    }

    /// Builds per-shard snapshots plus the merged latency view. Takes each
    /// shard lock in turn (not a globally atomic cut — counters may move
    /// between shard visits while workers run).
    pub fn snapshot(&self) -> ShardedSnapshot {
        let shards: Vec<ServerSnapshot> = self.shards.iter().map(|s| s.lock().snapshot()).collect();
        let latency = self.merged_latency();
        ShardedSnapshot {
            p50_ns: latency.p50_ns(),
            p99_ns: latency.p99_ns(),
            p999_ns: latency.p999_ns(),
            max_ns: latency.max_ns(),
            latency_count: latency.count(),
            shards,
        }
    }
}

/// Per-shard snapshots plus merged latency quantiles, built by
/// [`ShardedServer::snapshot`]. Aggregate counters are summed on demand
/// from the per-shard snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedSnapshot {
    /// Median submit-to-completion latency over all shards (ns).
    pub p50_ns: u64,
    /// 99th-percentile latency over all shards (ns).
    pub p99_ns: u64,
    /// 99.9th-percentile latency over all shards (ns).
    pub p999_ns: u64,
    /// Largest exact latency sample over all shards (ns).
    pub max_ns: u64,
    /// Latency samples recorded over all shards.
    pub latency_count: u64,
    /// One [`ServerSnapshot`] per shard, in shard order.
    pub shards: Vec<ServerSnapshot>,
}

impl ShardedSnapshot {
    /// Frames accepted across all shards.
    pub fn frames_submitted(&self) -> u64 {
        self.shards.iter().map(|s| s.frames_submitted).sum()
    }

    /// Frames completed across all shards.
    pub fn frames_completed(&self) -> u64 {
        self.shards.iter().map(|s| s.frames_completed).sum()
    }

    /// Submits rejected queue-full across all shards.
    pub fn rejected_queue_full(&self) -> u64 {
        self.shards.iter().map(|s| s.rejected_queue_full).sum()
    }

    /// Submits load-shed (degraded streams) across all shards.
    pub fn shed(&self) -> u64 {
        self.shards.iter().map(|s| s.shed).sum()
    }

    /// Submits rejected by the projected-deadline-miss policy across all
    /// shards.
    pub fn deadline_shed(&self) -> u64 {
        self.shards.iter().map(|s| s.deadline_shed).sum()
    }

    /// Queued frames dropped past-deadline across all shards.
    pub fn expired(&self) -> u64 {
        self.shards.iter().map(|s| s.expired).sum()
    }

    /// Streams holding sessions across all shards.
    pub fn active_streams(&self) -> usize {
        self.shards.iter().map(|s| s.active_streams).sum()
    }

    /// Serializes aggregate counters, merged latency, and one compact row
    /// per shard as hand-rolled JSON (same style as
    /// [`ServerSnapshot::to_json`]).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"shards\": {},", self.shards.len());
        let _ = writeln!(s, "  \"active_streams\": {},", self.active_streams());
        let _ = writeln!(s, "  \"frames_submitted\": {},", self.frames_submitted());
        let _ = writeln!(s, "  \"frames_completed\": {},", self.frames_completed());
        let _ = writeln!(
            s,
            "  \"backpressure\": {{\"queue_full\": {}, \"shed\": {}, \"deadline_shed\": {}, \
             \"expired\": {}}},",
            self.rejected_queue_full(),
            self.shed(),
            self.deadline_shed(),
            self.expired()
        );
        let _ = writeln!(
            s,
            "  \"latency_ns\": {{\"count\": {}, \"p50\": {}, \"p99\": {}, \"p999\": {}, \
             \"max\": {}}},",
            self.latency_count, self.p50_ns, self.p99_ns, self.p999_ns, self.max_ns
        );
        s.push_str("  \"per_shard\": [\n");
        for (i, sh) in self.shards.iter().enumerate() {
            let comma = if i + 1 == self.shards.len() { "" } else { "," };
            let _ = writeln!(
                s,
                "    {{\"streams\": {}, \"frames_completed\": {}, \"p99\": {}}}{}",
                sh.active_streams, sh.frames_completed, sh.p99_ns, comma
            );
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }
}

/// Dedicated per-shard worker threads driving a [`ShardedServer`].
///
/// Each worker loops on its shard: tick while the shard has ready units,
/// park on the shard's condvar (with a short timeout, so recurrent models
/// whose sequences fill while the worker sleeps are still picked up)
/// otherwise. Stream execution errors are sticky on their stream inside
/// the shard; workers additionally collect the first few into a side
/// buffer readable via [`ShardWorkers::take_errors`].
///
/// Dropping the handle stops and joins all workers.
#[derive(Debug)]
pub struct ShardWorkers {
    server: Arc<ShardedServer>,
    stop: Arc<AtomicBool>,
    errors: Arc<Mutex<Vec<ServeError>>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

/// Cap on buffered worker-side errors (each stream's error is sticky and
/// reported once, so this bounds memory under mass failure).
const MAX_BUFFERED_ERRORS: usize = 64;

impl ShardWorkers {
    /// Spawns one worker thread per shard of `server`.
    pub fn start(server: Arc<ShardedServer>) -> ShardWorkers {
        let stop = Arc::new(AtomicBool::new(false));
        let errors = Arc::new(Mutex::new(Vec::new()));
        let handles = (0..server.shard_count())
            .map(|s| {
                let server = Arc::clone(&server);
                let stop = Arc::clone(&stop);
                let errors = Arc::clone(&errors);
                std::thread::Builder::new()
                    .name(format!("reuse-shard-{s}"))
                    .spawn(move || worker_loop(&server, s, &stop, &errors))
                    .expect("spawn shard worker")
            })
            .collect();
        ShardWorkers {
            server,
            stop,
            errors,
            handles,
        }
    }

    /// The served [`ShardedServer`].
    pub fn server(&self) -> &Arc<ShardedServer> {
        &self.server
    }

    /// Takes the stream execution errors workers have collected so far
    /// (each underlying failure appears at most once; see
    /// [`StreamServer::tick`]).
    pub fn take_errors(&self) -> Vec<ServeError> {
        std::mem::take(&mut *self.errors.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Signals all workers to stop and joins them. Idempotent; also runs
    /// on drop.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for shard in &self.server.shards {
            shard.work.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ShardWorkers {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Body of one shard worker thread: tick while ready, park otherwise.
fn worker_loop(
    server: &ShardedServer,
    s: usize,
    stop: &AtomicBool,
    errors: &Mutex<Vec<ServeError>>,
) {
    let shard = &server.shards[s];
    let mut guard = shard.lock();
    while !stop.load(Ordering::SeqCst) {
        if guard.ready_units() > 0 {
            if let Err(e) = guard.tick() {
                let mut buf = errors.lock().unwrap_or_else(PoisonError::into_inner);
                if buf.len() < MAX_BUFFERED_ERRORS {
                    buf.push(e);
                }
            }
        } else {
            // Park until a submit signals work (or a short timeout — a
            // recurrent stream's sequence can become ready without a fresh
            // notify when frames arrived while we were ticking).
            guard = shard
                .work
                .wait_timeout(guard, Duration::from_millis(1))
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }
}

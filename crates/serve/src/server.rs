//! The [`StreamServer`]: N independent frame streams multiplexed over one
//! shared [`CompiledModel`].
//!
//! Each stream owns a [`ReuseSession`] (lazily created on first submit),
//! a bounded ingress queue of pending frames, and a bounded queue of
//! completed outputs. A scheduling tick batches every stream's ready frames
//! and fans the per-stream batches out across the scoped thread pool with
//! dynamic (work-stealing) scheduling, so the pool is fed large, even units
//! of work even when queues are ragged. Sessions never share mutable state,
//! so outputs are bit-identical to running each stream alone through its
//! own standalone session, under any interleaving and any worker count.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use reuse_core::{CompiledModel, ReuseSession};
use reuse_tensor::{parallel_for_each_mut, parallel_for_each_mut_order, ParallelConfig};

use crate::error::ServeError;
use crate::histogram::LatencyHistogram;
use crate::snapshot::{ServerSnapshot, StreamSnapshot};

/// Outcome of submitting one frame to a stream's ingress queue — the
/// explicit backpressure signal callers react to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitResult {
    /// The frame was queued and will execute on a later tick.
    Accepted,
    /// The stream's bounded ingress queue is full; retry after a tick.
    QueueFull,
    /// The frame was load-shed: the stream is degraded (its session's drift
    /// watchdog auto-disabled reuse layers, so it runs at full-precision
    /// cost) and its queue is past the shed watermark. Dropping fresh
    /// frames keeps a degraded stream from starving healthy ones.
    Shed,
    /// The frame was load-shed because it is projected to miss its
    /// deadline: queued work × the observed per-frame service time
    /// (EWMA over recent ticks) already exceeds the slack the caller
    /// allowed. Shedding at ingress costs nothing; executing a frame whose
    /// result arrives too late costs a full forward pass.
    DeadlineShed,
}

/// Ingress scheduling class of a submitted frame. Frames within one stream
/// always execute in submission order (the reuse chain is sequential);
/// priority controls *cross-stream* service order inside a tick: streams
/// with a high-priority frame at the head of their queue are dispatched
/// before normal ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Default lane.
    #[default]
    Normal,
    /// Served before `Normal` streams within each scheduling tick.
    High,
}

/// Per-frame submission options: deadline and ingress priority. The
/// plain [`StreamServer::submit`] uses `SubmitOptions::default()` — no
/// deadline, normal priority — and behaves exactly as before.
#[derive(Debug, Clone, Copy, Default)]
pub struct SubmitOptions {
    /// Absolute completion deadline. Submits projected to miss it are
    /// rejected with [`SubmitResult::DeadlineShed`]; queued frames whose
    /// deadline has already passed when they reach the head of the queue
    /// are dropped (counted as `expired`) instead of executed.
    pub deadline: Option<Instant>,
    /// Ingress lane (see [`Priority`]).
    pub priority: Priority,
    /// Opaque caller tag carried through to the frame's completion:
    /// reported by [`StreamServer::drain_outputs_tagged`] alongside the
    /// output, or by [`StreamServer::drain_expired`] when the frame is
    /// dropped past-deadline. The network front-end uses it to pair
    /// responses with request sequence numbers; `0` by default.
    pub tag: u64,
}

impl SubmitOptions {
    /// Deadline `slack` from now.
    pub fn with_deadline(mut self, slack: Duration) -> Self {
        self.deadline = Some(Instant::now() + slack);
        self
    }

    /// High-priority ingress lane.
    pub fn high_priority(mut self) -> Self {
        self.priority = Priority::High;
        self
    }

    /// Opaque completion tag (see [`Self::tag`]).
    pub fn tagged(mut self, tag: u64) -> Self {
        self.tag = tag;
        self
    }
}

/// What one scheduling tick accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickStats {
    /// Frames completed this tick (timesteps, for recurrent models).
    pub frames: u64,
    /// Streams that completed at least one frame this tick.
    pub streams: usize,
}

/// Configuration of a [`StreamServer`]. All knobs have serving-friendly
/// defaults; setters consume and return `self` like
/// [`reuse_core::ReuseConfig`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    max_sessions: usize,
    queue_capacity: usize,
    shed_watermark: usize,
    batch_max: usize,
    sequence_len: usize,
    parallel: ParallelConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_sessions: 64,
            queue_capacity: 32,
            shed_watermark: 16,
            batch_max: 8,
            sequence_len: 0,
            parallel: ParallelConfig::serial(),
        }
    }
}

impl ServerConfig {
    /// Session-pool cap (minimum 1). A submit for an unknown stream beyond
    /// the cap evicts the least-recently-used stream first.
    pub fn max_sessions(mut self, n: usize) -> Self {
        self.max_sessions = n.max(1);
        self
    }

    /// Per-stream ingress-queue capacity in frames (minimum 1).
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = n.max(1);
        self
    }

    /// Queue depth at/above which a degraded stream's submits are shed
    /// (see [`SubmitResult::Shed`]). Clamped to the queue capacity.
    pub fn shed_watermark(mut self, n: usize) -> Self {
        self.shed_watermark = n;
        self
    }

    /// Max ready units one stream may complete per tick (minimum 1) — a
    /// unit is one frame, or one sequence for recurrent models. Bounds how
    /// long a backlogged stream can monopolize a worker.
    pub fn batch_max(mut self, n: usize) -> Self {
        self.batch_max = n.max(1);
        self
    }

    /// Timesteps per execution unit for recurrent models: frames accumulate
    /// in the ingress queue and execute as one sequence once `n` are
    /// queued. Required (nonzero) for recurrent networks, and must be 0 for
    /// feed-forward ones.
    pub fn sequence_len(mut self, n: usize) -> Self {
        self.sequence_len = n;
        self
    }

    /// Parallelism budget for the cross-stream dispatch loop (default
    /// serial). This fans *streams* out across workers; each session's own
    /// kernels use the parallel config compiled into the model.
    pub fn parallel(mut self, parallel: ParallelConfig) -> Self {
        self.parallel = parallel;
        self
    }

    /// Effective shed watermark (clamped to the queue capacity).
    fn effective_watermark(&self) -> usize {
        self.shed_watermark.min(self.queue_capacity)
    }
}

/// One queued input frame plus its enqueue timestamp (for the
/// submit-to-completion latency histogram) and scheduling metadata.
#[derive(Debug)]
struct QueuedFrame {
    data: Vec<f32>,
    enqueued: Instant,
    deadline: Option<Instant>,
    priority: Priority,
    /// Caller tag, reported back on completion or expiry.
    tag: u64,
}

/// One stream's slot in the server: its session, bounded queues, and
/// recycling buffer lists. Everything here is preallocated at stream
/// creation so the steady-state submit/tick/drain cycle never allocates
/// (feed-forward models, serial dispatch).
#[derive(Debug)]
struct StreamEntry {
    id: u64,
    session: ReuseSession,
    /// Pending input frames, oldest first (capacity = `queue_capacity`).
    queue: VecDeque<QueuedFrame>,
    /// Recycled ingress frame buffers.
    frame_free: Vec<Vec<f32>>,
    /// Completed outputs with their caller tags, oldest first (capacity =
    /// `queue_capacity`).
    outputs: VecDeque<(u64, Vec<f32>)>,
    /// Recycled output buffers.
    out_free: Vec<Vec<f32>>,
    /// Tags of frames dropped past-deadline, oldest first (bounded like
    /// the output queue; oldest dropped if the caller never drains).
    expired_tags: VecDeque<u64>,
    /// Scratch for assembling recurrent sequences (timestep buffers are
    /// moved in from the queue and returned to `frame_free` after).
    seq_scratch: Vec<Vec<f32>>,
    /// Logical-clock value of the stream's last submit (LRU key).
    last_used: u64,
    /// Whether the session's drift watchdog has auto-disabled any reuse
    /// layer (recomputed after each tick; drives the shed policy).
    degraded: bool,
    /// Frames accepted into the queue over the stream's lifetime.
    frames_in: u64,
    /// Frames completed over the stream's lifetime.
    frames_done: u64,
    /// Submits rejected with [`SubmitResult::QueueFull`] (lifetime).
    rejected_queue_full: u64,
    /// Submits rejected with [`SubmitResult::Shed`] (lifetime).
    shed: u64,
    /// Submits rejected with [`SubmitResult::DeadlineShed`] (lifetime).
    deadline_shed: u64,
    /// Queued frames dropped at execution time because their deadline had
    /// already passed (lifetime).
    expired: u64,
    /// Queued frames with [`Priority::High`] (kept in sync by submit and
    /// the dispatch workers; drives the per-tick priority ordering).
    high_pending: usize,
    /// Completed outputs overwritten because the output queue was full
    /// (the caller stopped draining).
    outputs_dropped: u64,
    /// Frames this entry completed in the current tick (summed after the
    /// parallel loop — keeps the dispatch workers free of shared counters).
    tick_frames: u64,
    /// Frames this entry dropped past-deadline in the current tick (summed
    /// into the server-wide `expired` counter after the parallel loop).
    tick_expired: u64,
    /// First execution error, if any. The error is sticky: a failed stream
    /// stays failed (skipped by later ticks, zero ready units) until it is
    /// evicted — it must never silently resume.
    error: Option<reuse_core::ReuseError>,
    /// Whether [`StreamServer::tick`] has already surfaced this stream's
    /// error to the caller (each failure is reported exactly once).
    error_reported: bool,
}

impl StreamEntry {
    fn new(id: u64, session: ReuseSession, config: &ServerConfig) -> Self {
        StreamEntry {
            id,
            session,
            queue: VecDeque::with_capacity(config.queue_capacity),
            frame_free: Vec::with_capacity(config.queue_capacity),
            outputs: VecDeque::with_capacity(config.queue_capacity),
            out_free: Vec::with_capacity(config.queue_capacity + 1),
            expired_tags: VecDeque::with_capacity(config.queue_capacity),
            seq_scratch: Vec::with_capacity(config.sequence_len),
            last_used: 0,
            degraded: false,
            frames_in: 0,
            frames_done: 0,
            rejected_queue_full: 0,
            shed: 0,
            deadline_shed: 0,
            expired: 0,
            high_pending: 0,
            outputs_dropped: 0,
            tick_frames: 0,
            tick_expired: 0,
            error: None,
            error_reported: false,
        }
    }

    /// Frames ready to execute: every queued frame for feed-forward
    /// streams, whole sequences only for recurrent ones. A failed stream
    /// has no ready units — its queued frames stay parked so drain loops
    /// spinning on [`StreamServer::ready_units`] terminate.
    fn ready_units(&self, sequence_len: usize) -> usize {
        if self.error.is_some() {
            return 0;
        }
        self.queue
            .len()
            .checked_div(sequence_len)
            .unwrap_or(self.queue.len())
    }

    /// Pushes one completed output, recycling the oldest if the bounded
    /// output queue is full (the caller stopped draining).
    fn push_output(&mut self, tag: u64, out: Vec<f32>, cap: usize) {
        if self.outputs.len() >= cap {
            if let Some((_, old)) = self.outputs.pop_front() {
                self.out_free.push(old);
                self.outputs_dropped += 1;
            }
        }
        self.outputs.push_back((tag, out));
    }

    /// Records one past-deadline drop's tag, bounded like the output queue.
    fn push_expired(&mut self, tag: u64, cap: usize) {
        if self.expired_tags.len() >= cap {
            self.expired_tags.pop_front();
        }
        self.expired_tags.push_back(tag);
    }

    /// Runs up to `batch_max` ready units on this entry's session. Called
    /// from the dispatch workers: touches only this entry plus the shared
    /// (lock-free) histogram.
    fn process(&mut self, config: &ServerConfig, latency: &LatencyHistogram) {
        self.tick_frames = 0;
        self.tick_expired = 0;
        if self.error.is_some() {
            return;
        }
        let mut units = 0usize;
        while units < config.batch_max && self.ready_units(config.sequence_len) > 0 {
            if config.sequence_len == 0 {
                let frame = self.queue.pop_front().expect("ready unit implies frame");
                if frame.priority == Priority::High {
                    self.high_pending -= 1;
                }
                // A frame whose deadline already passed is dropped, not
                // executed: its result would arrive too late to matter,
                // and the forward pass it saves goes to frames that can
                // still make their deadlines.
                if frame.deadline.is_some_and(|d| Instant::now() > d) {
                    self.expired += 1;
                    self.tick_expired += 1;
                    self.push_expired(frame.tag, config.queue_capacity);
                    self.frame_free.push(frame.data);
                    units += 1;
                    continue;
                }
                let mut out = self.out_free.pop().unwrap_or_default();
                match self.session.execute_into(&frame.data, &mut out) {
                    Ok(()) => {
                        latency.record(frame.enqueued.elapsed().as_nanos() as u64);
                        self.push_output(frame.tag, out, config.queue_capacity);
                        self.frames_done += 1;
                        self.tick_frames += 1;
                    }
                    Err(e) => {
                        self.out_free.push(out);
                        self.error = Some(e);
                    }
                }
                self.frame_free.push(frame.data);
                if self.error.is_some() {
                    break;
                }
            } else {
                self.process_sequence(config, latency);
                if self.error.is_some() {
                    break;
                }
            }
            units += 1;
        }
        self.degraded = self.session.auto_disabled_layers().next().is_some();
    }

    /// Executes one full sequence (recurrent models). Sequence execution
    /// goes through [`ReuseSession::execute_sequence`], which allocates —
    /// recurrent serving is outside the zero-alloc dispatch contract, same
    /// as the engine itself.
    fn process_sequence(&mut self, config: &ServerConfig, latency: &LatencyHistogram) {
        let len = config.sequence_len;
        debug_assert!(self.queue.len() >= len);
        self.seq_scratch.clear();
        let mut enqueued = Vec::with_capacity(len);
        let mut tags = Vec::with_capacity(len);
        for _ in 0..len {
            let frame = self.queue.pop_front().expect("checked above");
            if frame.priority == Priority::High {
                self.high_pending -= 1;
            }
            self.seq_scratch.push(frame.data);
            enqueued.push(frame.enqueued);
            tags.push(frame.tag);
        }
        match self.session.execute_sequence(&self.seq_scratch) {
            Ok(outs) => {
                for (t, tensor) in outs.iter().enumerate() {
                    let mut out = self.out_free.pop().unwrap_or_default();
                    out.clear();
                    out.extend_from_slice(tensor.as_slice());
                    latency.record(enqueued[t].elapsed().as_nanos() as u64);
                    self.push_output(tags[t], out, config.queue_capacity);
                    self.frames_done += 1;
                    self.tick_frames += 1;
                }
            }
            Err(e) => self.error = Some(e),
        }
        for data in self.seq_scratch.drain(..) {
            self.frame_free.push(data);
        }
    }
}

/// A multi-stream serving runtime over one shared [`CompiledModel`].
///
/// Lifecycle: [`submit`](Self::submit) frames tagged with a stream id
/// (sessions are created lazily, the least-recently-used stream is evicted
/// past [`ServerConfig::max_sessions`]), call [`tick`](Self::tick) to
/// execute every stream's ready frames, and
/// [`drain_outputs`](Self::drain_outputs) to consume results in order.
///
/// **Determinism:** each stream's frames execute in submission order on
/// that stream's private session, so per-stream outputs and metrics are
/// bit-identical to a standalone [`ReuseSession`] fed the same frames —
/// regardless of how streams interleave or how many dispatch workers run
/// (property-tested in `tests/serve.rs`).
///
/// **Allocation:** with feed-forward models and the default serial
/// dispatch, the steady-state submit → tick → drain cycle performs zero
/// heap allocations: ingress frames, outputs, and session intermediates
/// all come from preallocated recycling lists (enforced by the
/// counting-allocator test in `tests/alloc.rs`). Parallel dispatch spawns
/// scoped threads per tick; recurrent sequences allocate inside the
/// engine.
#[derive(Debug)]
pub struct StreamServer {
    model: Arc<CompiledModel>,
    config: ServerConfig,
    entries: Vec<StreamEntry>,
    /// Stream id → index into `entries`.
    index: HashMap<u64, usize>,
    /// Logical clock advanced on every submit (LRU ordering).
    clock: u64,
    latency: LatencyHistogram,
    frame_len: usize,
    ticks: u64,
    frames_submitted: u64,
    frames_completed: u64,
    rejected_queue_full: u64,
    shed: u64,
    /// Submits rejected by the projected-deadline-miss policy.
    deadline_shed: u64,
    /// Queued frames dropped at execution time (deadline already passed).
    expired: u64,
    evictions: u64,
    /// Queued frames discarded when their stream was evicted.
    evicted_frames: u64,
    /// Total queued frames across streams (kept incrementally so the
    /// per-submit deadline projection is O(1), not O(streams)).
    pending_total: usize,
    /// Queued high-priority frames across streams (when zero — the common
    /// case — ticks skip the priority ordering pass entirely).
    high_pending: usize,
    /// EWMA of the observed per-frame service time in nanoseconds over
    /// recent ticks; `0` until the first frame completes. This is the
    /// `s̄` in the projected-deadline-miss formula (DESIGN.md §13).
    service_ewma_ns: f64,
    /// Scratch for the priority-ordered dispatch index (reused per tick).
    order: Vec<usize>,
}

impl StreamServer {
    /// Creates a server over a compiled model.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] when [`ServerConfig::sequence_len`]
    /// does not match the model (recurrent networks need a nonzero
    /// sequence length that fits the queue; feed-forward networks need 0).
    pub fn new(model: Arc<CompiledModel>, config: ServerConfig) -> Result<Self, ServeError> {
        let recurrent = model.network().is_recurrent();
        if recurrent && config.sequence_len == 0 {
            return Err(ServeError::Config {
                context: "recurrent model: set ServerConfig::sequence_len".into(),
            });
        }
        if !recurrent && config.sequence_len != 0 {
            return Err(ServeError::Config {
                context: "feed-forward model: ServerConfig::sequence_len must be 0".into(),
            });
        }
        if config.sequence_len > config.queue_capacity {
            return Err(ServeError::Config {
                context: format!(
                    "sequence_len {} exceeds queue_capacity {}: sequences would never be ready",
                    config.sequence_len, config.queue_capacity
                ),
            });
        }
        let frame_len = model.network().input_shape().volume();
        Ok(StreamServer {
            model,
            config,
            entries: Vec::new(),
            index: HashMap::new(),
            clock: 0,
            latency: LatencyHistogram::new(),
            frame_len,
            ticks: 0,
            frames_submitted: 0,
            frames_completed: 0,
            rejected_queue_full: 0,
            shed: 0,
            deadline_shed: 0,
            expired: 0,
            evictions: 0,
            evicted_frames: 0,
            pending_total: 0,
            high_pending: 0,
            service_ewma_ns: 0.0,
            order: Vec::new(),
        })
    }

    /// The shared compiled model.
    pub fn model(&self) -> &Arc<CompiledModel> {
        &self.model
    }

    /// The server configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Active streams (sessions currently in the pool).
    pub fn stream_count(&self) -> usize {
        self.entries.len()
    }

    /// Whether a stream currently has a session in the pool.
    pub fn contains(&self, id: u64) -> bool {
        self.index.contains_key(&id)
    }

    /// A stream's session, for introspection (metrics, telemetry).
    pub fn session(&self, id: u64) -> Option<&ReuseSession> {
        self.index.get(&id).map(|&slot| &self.entries[slot].session)
    }

    /// Whether a stream has failed (its sticky execution error is set). A
    /// failed stream is skipped by ticks until evicted.
    pub fn stream_failed(&self, id: u64) -> bool {
        self.index
            .get(&id)
            .is_some_and(|&slot| self.entries[slot].error.is_some())
    }

    /// Marks a stream failed with `error`, as if one of its frames had
    /// errored during a tick. Returns `false` when the stream does not
    /// exist. Test hook for the sticky-error path: real execution errors
    /// are unreachable through `submit`'s pre-validation.
    #[doc(hidden)]
    pub fn inject_stream_error(&mut self, id: u64, error: reuse_core::ReuseError) -> bool {
        let Some(&slot) = self.index.get(&id) else {
            return false;
        };
        let entry = &mut self.entries[slot];
        if entry.error.is_none() {
            entry.error = Some(error);
            entry.error_reported = false;
        }
        true
    }

    /// Queued (not yet executed) frames for one stream.
    pub fn queue_len(&self, id: u64) -> usize {
        self.index
            .get(&id)
            .map_or(0, |&slot| self.entries[slot].queue.len())
    }

    /// Total queued frames across all streams.
    pub fn pending(&self) -> usize {
        self.entries.iter().map(|e| e.queue.len()).sum()
    }

    /// Execution units (frames, or whole sequences for recurrent models)
    /// ready to run on the next tick.
    pub fn ready_units(&self) -> usize {
        self.entries
            .iter()
            .map(|e| e.ready_units(self.config.sequence_len))
            .sum()
    }

    /// Scheduling ticks run so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Frames accepted across all streams (lifetime).
    pub fn frames_submitted(&self) -> u64 {
        self.frames_submitted
    }

    /// Frames completed across all streams (lifetime).
    pub fn frames_completed(&self) -> u64 {
        self.frames_completed
    }

    /// Submits rejected with [`SubmitResult::QueueFull`].
    pub fn rejected_queue_full(&self) -> u64 {
        self.rejected_queue_full
    }

    /// Submits rejected with [`SubmitResult::Shed`].
    pub fn shed_frames(&self) -> u64 {
        self.shed
    }

    /// Submits rejected with [`SubmitResult::DeadlineShed`].
    pub fn deadline_shed_frames(&self) -> u64 {
        self.deadline_shed
    }

    /// Queued frames dropped at execution time because their deadline had
    /// already passed.
    pub fn expired_frames(&self) -> u64 {
        self.expired
    }

    /// EWMA of the observed per-frame service time in nanoseconds (`0.0`
    /// until the first tick completes a frame). Aggregate across the
    /// server: with in-shard parallel dispatch it reflects effective
    /// (wall-clock ÷ frames) service time, which is what the deadline
    /// projection needs.
    pub fn service_ewma_ns(&self) -> f64 {
        self.service_ewma_ns
    }

    /// Projected wait in nanoseconds for a frame submitted now: queued
    /// frames × observed per-frame service time. `0` until a service-time
    /// estimate exists.
    pub fn projected_wait_ns(&self) -> u64 {
        (self.pending_total as f64 * self.service_ewma_ns) as u64
    }

    /// Streams evicted by the LRU session-pool cap.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// The submit-to-completion latency histogram.
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// Submits one frame to a stream's ingress queue. Creates the stream's
    /// session lazily on first submit (evicting the least-recently-used
    /// stream when the pool is at [`ServerConfig::max_sessions`]); applies
    /// the queue-full and load-shedding backpressure policies.
    ///
    /// Steady-state submits (existing stream, recycled buffer available)
    /// perform zero heap allocations.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Reuse`] when the frame length does not match
    /// the model's input volume.
    pub fn submit(&mut self, id: u64, frame: &[f32]) -> Result<SubmitResult, ServeError> {
        self.submit_with(id, frame, SubmitOptions::default())
    }

    /// [`Self::submit`] with per-frame scheduling options: an absolute
    /// completion deadline and an ingress priority lane.
    ///
    /// With a deadline set, the submit is additionally subject to the
    /// **projected-deadline-miss** policy: if queued work × the observed
    /// per-frame service time (EWMA over recent ticks) already reaches
    /// past the deadline, the frame is rejected with
    /// [`SubmitResult::DeadlineShed`] instead of queued — executing it
    /// would deliver a result nobody can use while delaying frames that
    /// can still make their deadlines. A queued frame whose deadline
    /// passes before it reaches the head of its queue is likewise dropped
    /// (`expired`) rather than executed.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Reuse`] when the frame length does not match
    /// the model's input volume.
    pub fn submit_with(
        &mut self,
        id: u64,
        frame: &[f32],
        opts: SubmitOptions,
    ) -> Result<SubmitResult, ServeError> {
        if frame.len() != self.frame_len {
            return Err(ServeError::Reuse(reuse_core::ReuseError::Nn(
                reuse_nn::NnError::InputShape {
                    expected: self.frame_len,
                    actual: frame.len(),
                },
            )));
        }
        let slot = match self.index.get(&id) {
            Some(&slot) => slot,
            None => self.create_stream(id),
        };
        let watermark = self.config.effective_watermark();
        // Projected completion: now + (queued-across-server + 1) × s̄.
        // Computed before borrowing the entry; `0` disables the check
        // until a service-time estimate exists (first tick).
        let projected_ns = ((self.pending_total + 1) as f64 * self.service_ewma_ns) as u64;
        let entry = &mut self.entries[slot];
        if entry.queue.len() >= self.config.queue_capacity {
            self.rejected_queue_full += 1;
            entry.rejected_queue_full += 1;
            return Ok(SubmitResult::QueueFull);
        }
        if entry.degraded && entry.queue.len() >= watermark {
            self.shed += 1;
            entry.shed += 1;
            return Ok(SubmitResult::Shed);
        }
        if let Some(deadline) = opts.deadline {
            if projected_ns > 0 && Instant::now() + Duration::from_nanos(projected_ns) > deadline {
                self.deadline_shed += 1;
                entry.deadline_shed += 1;
                return Ok(SubmitResult::DeadlineShed);
            }
        }
        // Only accepted frames refresh the LRU clock: a spammer whose every
        // submit is rejected must not look recently used and push healthy
        // streams out of the session pool. (A brand-new stream's first
        // submit cannot be rejected — its queue is empty and it is not
        // degraded — so a just-created entry always gets a clock value.)
        self.clock += 1;
        entry.last_used = self.clock;
        let mut data = entry.frame_free.pop().unwrap_or_default();
        data.clear();
        data.extend_from_slice(frame);
        entry.queue.push_back(QueuedFrame {
            data,
            enqueued: Instant::now(),
            deadline: opts.deadline,
            priority: opts.priority,
            tag: opts.tag,
        });
        if opts.priority == Priority::High {
            entry.high_pending += 1;
            self.high_pending += 1;
        }
        entry.frames_in += 1;
        self.frames_submitted += 1;
        self.pending_total += 1;
        Ok(SubmitResult::Accepted)
    }

    /// Creates the entry for a new stream, evicting the LRU stream first
    /// when the pool is at its cap. Cold path: allocates the session and
    /// its queues.
    fn create_stream(&mut self, id: u64) -> usize {
        if self.entries.len() >= self.config.max_sessions {
            self.evict_lru();
        }
        let slot = self.entries.len();
        self.entries
            .push(StreamEntry::new(id, self.model.new_session(), &self.config));
        self.index.insert(id, slot);
        // Cold path: keep the priority-order scratch large enough that
        // ticks never grow it (zero-alloc steady state).
        let need = self.entries.len();
        if self.order.capacity() < need {
            self.order.reserve(need - self.order.len());
        }
        slot
    }

    /// Evicts the least-recently-used stream: resets the session's buffered
    /// state and drops the entry, releasing its queues and buffer pools.
    /// Queued frames of the evicted stream are discarded (counted in the
    /// snapshot's `evicted_frames`).
    fn evict_lru(&mut self) {
        let Some(slot) = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(i, _)| i)
        else {
            return;
        };
        let mut entry = self.entries.swap_remove(slot);
        self.index.remove(&entry.id);
        // The session is about to be dropped; reset_state releases its
        // buffered per-layer state eagerly (and makes the session inert if
        // anything still holds it through shared introspection).
        entry.session.reset_state();
        self.evicted_frames += entry.queue.len() as u64;
        self.pending_total -= entry.queue.len();
        self.high_pending -= entry.high_pending;
        self.evictions += 1;
        // swap_remove moved the tail entry into `slot`: fix its index.
        if let Some(moved) = self.entries.get(slot) {
            self.index.insert(moved.id, slot);
        }
    }

    /// Runs one scheduling tick: every stream with ready units executes up
    /// to [`ServerConfig::batch_max`] of them, in submission order, with
    /// the per-stream batches fanned out across dispatch workers by
    /// work-stealing ([`parallel_for_each_mut`]). Returns what was done.
    ///
    /// # Errors
    ///
    /// Returns the first not-yet-reported stream execution error. The error
    /// stays on the stream (sticky): the failed stream is skipped by every
    /// later tick and never silently resumes, but each failure is surfaced
    /// through this result exactly once.
    pub fn tick(&mut self) -> Result<TickStats, ServeError> {
        self.ticks += 1;
        let started = Instant::now();
        let config = &self.config;
        let latency = &self.latency;
        if self.high_pending > 0 {
            // Priority lanes: streams whose *head* frame is high-priority
            // are dispatched first (stable partition, so FIFO order is
            // preserved within each lane). The scratch index is reused
            // across ticks; its capacity is reserved on stream creation.
            self.order.clear();
            self.order.extend(
                self.entries
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.queue.front().map(|f| f.priority) == Some(Priority::High))
                    .map(|(i, _)| i),
            );
            self.order.extend(
                self.entries
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.queue.front().map(|f| f.priority) != Some(Priority::High))
                    .map(|(i, _)| i),
            );
            parallel_for_each_mut_order(
                &config.parallel.min_work_per_thread(1),
                &mut self.entries,
                &self.order,
                |_, entry| entry.process(config, latency),
            );
        } else {
            parallel_for_each_mut(
                &config.parallel.min_work_per_thread(1),
                &mut self.entries,
                |_, entry| entry.process(config, latency),
            );
        }
        let mut stats = TickStats::default();
        let mut first_error = None;
        let mut pending = 0usize;
        let mut high = 0usize;
        for entry in &mut self.entries {
            stats.frames += entry.tick_frames;
            if entry.tick_frames > 0 {
                stats.streams += 1;
            }
            self.expired += entry.tick_expired;
            entry.tick_expired = 0;
            pending += entry.queue.len();
            high += entry.high_pending;
            if first_error.is_none() && !entry.error_reported {
                if let Some(e) = &entry.error {
                    first_error = Some(e.clone());
                    entry.error_reported = true;
                }
            }
        }
        self.pending_total = pending;
        self.high_pending = high;
        self.frames_completed += stats.frames;
        if stats.frames > 0 {
            // Observed per-frame service time this tick, folded into the
            // EWMA the deadline projection reads (α = 0.25; the first
            // observation seeds the estimate directly).
            let per_frame = started.elapsed().as_nanos() as f64 / stats.frames as f64;
            self.service_ewma_ns = if self.service_ewma_ns == 0.0 {
                per_frame
            } else {
                0.75 * self.service_ewma_ns + 0.25 * per_frame
            };
        }
        match first_error {
            Some(e) => Err(ServeError::Reuse(e)),
            None => Ok(stats),
        }
    }

    /// Drains a stream's completed outputs in completion order, invoking
    /// `f` with each flat output and recycling the buffer. Returns the
    /// number of outputs drained. Allocation-free.
    pub fn drain_outputs(&mut self, id: u64, mut f: impl FnMut(&[f32])) -> usize {
        self.drain_outputs_tagged(id, |_, out| f(out))
    }

    /// [`Self::drain_outputs`], additionally passing each output's
    /// submission tag ([`SubmitOptions::tagged`]) — how the network
    /// front-end pairs completions with request sequence numbers.
    /// Allocation-free.
    pub fn drain_outputs_tagged(&mut self, id: u64, mut f: impl FnMut(u64, &[f32])) -> usize {
        let Some(&slot) = self.index.get(&id) else {
            return 0;
        };
        let entry = &mut self.entries[slot];
        let mut drained = 0usize;
        while let Some((tag, out)) = entry.outputs.pop_front() {
            f(tag, &out);
            entry.out_free.push(out);
            drained += 1;
        }
        drained
    }

    /// Drains the tags of a stream's frames dropped past-deadline since the
    /// last call, oldest first (see [`SubmitOptions::with_deadline`]).
    /// Returns the number drained. Allocation-free.
    pub fn drain_expired(&mut self, id: u64, mut f: impl FnMut(u64)) -> usize {
        let Some(&slot) = self.index.get(&id) else {
            return 0;
        };
        let entry = &mut self.entries[slot];
        let mut drained = 0usize;
        while let Some(tag) = entry.expired_tags.pop_front() {
            f(tag);
            drained += 1;
        }
        drained
    }

    /// Builds an owned, serializable snapshot of the server's aggregate and
    /// per-stream state. Allocates — call from reporting paths, not per
    /// tick.
    pub fn snapshot(&self) -> ServerSnapshot {
        let outputs_dropped = self.entries.iter().map(|e| e.outputs_dropped).sum();
        let mut signature = reuse_core::SignatureStats::default();
        for e in &self.entries {
            let s = e.session.signature_stats();
            signature.lookups += s.lookups;
            signature.hits += s.hits;
            signature.adoptions += s.adoptions;
            signature.bailouts += s.bailouts;
            signature.inserts += s.inserts;
        }
        // Per-layer policy state aggregated across the pool: the layers of
        // every session line up (one shared model), so counters sum and the
        // operating points average. With no live session, report the
        // compiled resolution (step 0.0 = not calibrated anywhere).
        let policy_layers = if self.entries.is_empty() {
            self.model
                .layer_policy_specs()
                .map(|(name, p)| reuse_core::LayerPolicyState {
                    name: name.to_string(),
                    adaptive: p.adaptive,
                    clusters: p.clusters,
                    step: 0.0,
                    step_scale: p.step_scale,
                    reuse_threshold: p.reuse_threshold,
                    observations: 0,
                    grows: 0,
                    shrinks: 0,
                    refreshes: 0,
                })
                .collect()
        } else {
            let mut acc = self.entries[0].session.policy_states();
            for e in &self.entries[1..] {
                for (a, s) in acc.iter_mut().zip(e.session.policy_states()) {
                    a.step += s.step;
                    a.step_scale += s.step_scale;
                    a.reuse_threshold += s.reuse_threshold;
                    a.observations += s.observations;
                    a.grows += s.grows;
                    a.shrinks += s.shrinks;
                    a.refreshes += s.refreshes;
                }
            }
            let n = self.entries.len() as f32;
            for a in &mut acc {
                a.step /= n;
                a.step_scale /= n;
                a.reuse_threshold /= n;
            }
            acc
        };
        let streams = self
            .entries
            .iter()
            .map(|e| StreamSnapshot {
                id: e.id,
                frames_in: e.frames_in,
                frames_done: e.frames_done,
                queue_len: e.queue.len(),
                rejected_queue_full: e.rejected_queue_full,
                shed: e.shed,
                deadline_shed: e.deadline_shed,
                expired: e.expired,
                degraded: e.degraded,
                failed: e.error.is_some(),
                input_similarity: e.session.metrics().overall_input_similarity(),
            })
            .collect();
        ServerSnapshot {
            network: self.model.network().name().to_string(),
            active_streams: self.entries.len(),
            max_sessions: self.config.max_sessions,
            ticks: self.ticks,
            frames_submitted: self.frames_submitted,
            frames_completed: self.frames_completed,
            rejected_queue_full: self.rejected_queue_full,
            shed: self.shed,
            deadline_shed: self.deadline_shed,
            expired: self.expired,
            evictions: self.evictions,
            evicted_frames: self.evicted_frames,
            outputs_dropped,
            latency_count: self.latency.count(),
            p50_ns: self.latency.quantile_ns(0.50),
            p99_ns: self.latency.quantile_ns(0.99),
            p999_ns: self.latency.quantile_ns(0.999),
            max_ns: self.latency.max_ns(),
            service_ewma_ns: self.service_ewma_ns,
            signature,
            policy: self.model.policy_name().to_string(),
            policy_layers,
            streams,
        }
    }
}

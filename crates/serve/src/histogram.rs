//! A preallocated, lock-free latency histogram.
//!
//! The serving runtime records one sample per completed frame on the
//! dispatch hot path, possibly from several worker threads at once, so the
//! recorder must be wait-free and allocation-free: samples land in
//! power-of-two nanosecond buckets held in atomics, all allocated at
//! construction. Quantile queries walk the buckets and are meant for cold
//! reporting paths (snapshots), not per-frame use.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two buckets: bucket `b` holds samples whose value
/// needs exactly `b` significant bits, so bucket 0 is `0 ns`, bucket 1 is
/// `1 ns`, bucket 34 is `[2^33, 2^34) ns` (~8.6–17.2 s) — far beyond any
/// frame latency this runtime can produce.
const BUCKETS: usize = 65;

/// Fixed-size log₂ histogram of nanosecond latencies.
///
/// `record` is lock-free (one relaxed `fetch_add` plus a `fetch_max`) and
/// never allocates; resolution is one power of two, which is plenty for
/// p50/p99 tail reporting. Created once per [`crate::StreamServer`].
#[derive(Debug)]
pub struct LatencyHistogram {
    /// `buckets[b]` counts samples with bit-length `b`.
    buckets: Vec<AtomicU64>,
    /// Largest exact sample observed.
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram (allocates its buckets once).
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Index of the bucket a sample falls into (its bit length).
    fn bucket_of(ns: u64) -> usize {
        (u64::BITS - ns.leading_zeros()) as usize
    }

    /// Records one latency sample. Wait-free, allocation-free; safe to call
    /// concurrently from dispatch workers.
    pub fn record(&self, ns: u64) {
        self.buckets[Self::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Largest exact sample observed (`0` when empty).
    pub fn max_ns(&self) -> u64 {
        self.max_ns.load(Ordering::Relaxed)
    }

    /// The latency below which a `q` fraction of samples fall, reported as
    /// the upper edge of the containing power-of-two bucket (`0` when
    /// empty). `q` is clamped to `[0, 1]`; resolution is one power of two.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil(q * total), at least 1: the rank of the target sample.
        let rank = ((q * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_upper_edge(b);
            }
        }
        self.max_ns()
    }

    /// Inclusive upper edge of bucket `b` in nanoseconds.
    fn bucket_upper_edge(b: usize) -> u64 {
        if b == 0 {
            0
        } else if b >= 64 {
            u64::MAX
        } else {
            (1u64 << b) - 1
        }
    }

    /// Drops all samples, keeping the allocation.
    pub fn clear(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.max_ns.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.quantile_ns(0.5), 0);
    }

    #[test]
    fn buckets_are_bit_lengths() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 1);
        assert_eq!(LatencyHistogram::bucket_of(2), 2);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(4), 3);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn quantiles_walk_the_distribution() {
        let h = LatencyHistogram::new();
        // 90 fast samples (~1 µs) and 10 slow (~1 ms).
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.max_ns(), 1_000_000);
        let p50 = h.quantile_ns(0.50);
        let p99 = h.quantile_ns(0.99);
        // p50 lands in the microsecond bucket, p99 in the millisecond one.
        assert!((1_000..4_096).contains(&p50), "p50 {p50}");
        assert!((524_288..2_097_152).contains(&p99), "p99 {p99}");
        assert!(p50 < p99);
        h.clear();
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn zero_samples_stay_in_bucket_zero() {
        let h = LatencyHistogram::new();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile_ns(1.0), 0);
    }
}

//! A preallocated, lock-free latency histogram.
//!
//! The serving runtime records one sample per completed frame on the
//! dispatch hot path, possibly from several worker threads at once, so the
//! recorder must be wait-free and allocation-free: samples land in
//! log-linear nanosecond buckets held in atomics, all allocated at
//! construction. Quantile queries walk the buckets and are meant for cold
//! reporting paths (snapshots), not per-frame use.
//!
//! **Resolution.** Buckets are HdrHistogram-style log-linear: each
//! power-of-two range is split into [`SUB_BUCKETS`] linear sub-buckets, so
//! the relative quantization error of any reported quantile is at most
//! `1 / SUB_BUCKETS` (6.25%). The previous pure power-of-two layout made
//! p50/p99 snap to bucket edges (524287, 2097151, 134217727 ns — a 2×
//! error band), which is useless for tail comparison across runs.

use std::sync::atomic::{AtomicU64, Ordering};

/// log₂ of the linear sub-buckets per power-of-two range.
const SUB_BITS: u32 = 4;

/// Linear sub-buckets per power-of-two range (relative error ≤ 1/16).
pub const SUB_BUCKETS: u64 = 1 << SUB_BITS;

/// Total bucket count: values below [`SUB_BUCKETS`] are exact (one bucket
/// per nanosecond); each higher power-of-two range `[2^m, 2^(m+1))` for
/// `m = SUB_BITS ..= 63` contributes [`SUB_BUCKETS`] sub-buckets.
const BUCKETS: usize = (SUB_BUCKETS + (64 - SUB_BITS) as u64 * SUB_BUCKETS) as usize;

/// Fixed-size log-linear histogram of nanosecond latencies.
///
/// `record` is lock-free (one relaxed `fetch_add` plus a `fetch_max`) and
/// never allocates; resolution is ≤ 6.25% relative, which makes p50, p99
/// and p999 comparable across runs. Created once per
/// [`crate::StreamServer`].
#[derive(Debug)]
pub struct LatencyHistogram {
    /// Log-linear sample counts (see [`Self::bucket_of`]).
    buckets: Vec<AtomicU64>,
    /// Largest exact sample observed.
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram (allocates its buckets once).
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Index of the bucket a sample falls into. Values below
    /// [`SUB_BUCKETS`] are their own bucket (exact); a larger value with
    /// most-significant bit `m` keeps its top `SUB_BITS + 1` bits:
    /// group `m - SUB_BITS + 1`, sub-bucket = the `SUB_BITS` bits after
    /// the leading one.
    fn bucket_of(ns: u64) -> usize {
        if ns < SUB_BUCKETS {
            return ns as usize;
        }
        let msb = 63 - ns.leading_zeros();
        let shift = msb - SUB_BITS;
        let group = (msb - SUB_BITS + 1) as u64;
        let sub = (ns >> shift) & (SUB_BUCKETS - 1);
        (group * SUB_BUCKETS + sub) as usize
    }

    /// Inclusive upper edge of bucket `b` in nanoseconds — what quantile
    /// queries report, so the reported value over-estimates the true
    /// sample by at most one sub-bucket width (≤ 6.25% relative).
    fn bucket_upper_edge(b: usize) -> u64 {
        let b = b as u64;
        if b < SUB_BUCKETS {
            return b;
        }
        let group = b / SUB_BUCKETS;
        let sub = b % SUB_BUCKETS;
        let shift = (group - 1).min(63 - SUB_BITS as u64) as u32;
        let lower = (SUB_BUCKETS + sub) << shift;
        lower.saturating_add((1u64 << shift) - 1)
    }

    /// Records one latency sample. Wait-free, allocation-free; safe to call
    /// concurrently from dispatch workers.
    pub fn record(&self, ns: u64) {
        self.buckets[Self::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Largest exact sample observed (`0` when empty).
    pub fn max_ns(&self) -> u64 {
        self.max_ns.load(Ordering::Relaxed)
    }

    /// The latency below which a `q` fraction of samples fall, reported as
    /// the upper edge of the containing log-linear sub-bucket, clamped to
    /// the exact observed maximum. `q` is clamped to `[0, 1]`; relative
    /// resolution is ≤ `1 / SUB_BUCKETS` (6.25%).
    ///
    /// **Empty-histogram contract:** with zero samples every quantile is
    /// `0` — never NaN, never a sentinel. Idle servers therefore report
    /// all-zero `latency_ns` blocks through their snapshots and JSON, and
    /// monitoring can treat `count == 0` + zero quantiles as "idle"
    /// without special-casing.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil(q * total), at least 1: the rank of the target sample.
        let rank = ((q * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_upper_edge(b).min(self.max_ns());
            }
        }
        self.max_ns()
    }

    /// Median latency (see [`Self::quantile_ns`]).
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// 99th-percentile latency (see [`Self::quantile_ns`]).
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// 99.9th-percentile latency — the tail the serving SLO gates on.
    pub fn p999_ns(&self) -> u64 {
        self.quantile_ns(0.999)
    }

    /// Merges another histogram's samples into this one (used to aggregate
    /// per-shard histograms into a server-wide view). Not atomic as a
    /// whole; concurrent `record`s land in one histogram or the other.
    pub fn merge(&self, other: &LatencyHistogram) {
        for (dst, src) in self.buckets.iter().zip(other.buckets.iter()) {
            let v = src.load(Ordering::Relaxed);
            if v > 0 {
                dst.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.max_ns.fetch_max(other.max_ns(), Ordering::Relaxed);
    }

    /// Drops all samples, keeping the allocation.
    pub fn clear(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.max_ns.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.quantile_ns(0.5), 0);
        assert_eq!(h.p999_ns(), 0);
    }

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB_BUCKETS {
            let b = LatencyHistogram::bucket_of(v);
            assert_eq!(b, v as usize);
            assert_eq!(LatencyHistogram::bucket_upper_edge(b), v);
        }
    }

    #[test]
    fn bucket_mapping_is_monotone_and_tight() {
        // Every sample's reported upper edge is >= the sample and within
        // 1/SUB_BUCKETS relative error; bucket indices never decrease.
        let mut prev = 0usize;
        for shift in 0..60 {
            for base in [16u64, 17, 23, 31] {
                let v = base << shift;
                let b = LatencyHistogram::bucket_of(v);
                assert!(b >= prev, "bucket order broke at {v}");
                prev = b;
                let edge = LatencyHistogram::bucket_upper_edge(b);
                assert!(edge >= v, "edge {edge} below sample {v}");
                let err = (edge - v) as f64 / v as f64;
                assert!(err <= 1.0 / SUB_BUCKETS as f64, "err {err} at {v}");
            }
        }
        assert_eq!(
            LatencyHistogram::bucket_of(u64::MAX),
            BUCKETS - 1,
            "u64::MAX lands in the last bucket"
        );
    }

    #[test]
    fn quantiles_walk_the_distribution() {
        let h = LatencyHistogram::new();
        // 90 fast samples (~1 µs) and 10 slow (~1 ms).
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.max_ns(), 1_000_000);
        let p50 = h.quantile_ns(0.50);
        let p99 = h.quantile_ns(0.99);
        // Log-linear buckets: quantiles land within 6.25% of the sample.
        assert!((1_000..=1_063).contains(&p50), "p50 {p50}");
        assert!((1_000_000..=1_062_500).contains(&p99), "p99 {p99}");
        assert!(p50 < p99);
        h.clear();
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn p999_separates_the_extreme_tail() {
        let h = LatencyHistogram::new();
        for _ in 0..998 {
            h.record(10_000);
        }
        h.record(5_000_000);
        h.record(80_000_000);
        let p99 = h.p99_ns();
        let p999 = h.p999_ns();
        assert!(p99 < 5_300_000, "p99 {p99} should exclude the 1/1000 tail");
        assert!(
            (5_000_000..=5_312_500).contains(&p999),
            "p999 {p999} should capture the second-worst sample"
        );
    }

    #[test]
    fn quantile_never_exceeds_observed_max() {
        let h = LatencyHistogram::new();
        h.record(1_000_003);
        assert_eq!(h.quantile_ns(1.0), 1_000_003);
        assert_eq!(h.p999_ns(), 1_000_003);
    }

    #[test]
    fn merge_combines_counts_and_max() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record(100);
        b.record(200_000);
        b.record(300_000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max_ns(), 300_000);
        assert!(a.quantile_ns(1.0) >= 300_000 - 300_000 / 16);
    }

    #[test]
    fn zero_samples_stay_in_bucket_zero() {
        let h = LatencyHistogram::new();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile_ns(1.0), 0);
    }
}

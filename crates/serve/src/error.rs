//! Error type for the serving runtime.

use std::fmt;

use reuse_core::ReuseError;

/// Errors produced by the serving runtime.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The server configuration is inconsistent with the model.
    Config {
        /// Description of the inconsistency.
        context: String,
    },
    /// An error surfaced from a stream's underlying reuse session.
    Reuse(ReuseError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Config { context } => {
                write!(f, "invalid server configuration: {context}")
            }
            ServeError::Reuse(e) => write!(f, "stream execution error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Reuse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ReuseError> for ServeError {
    fn from(e: ReuseError) -> Self {
        ServeError::Reuse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_sources() {
        use std::error::Error;
        let e: ServeError = ReuseError::WrongApi {
            context: "x".into(),
        }
        .into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("stream execution"));
        let e = ServeError::Config {
            context: "bad".into(),
        };
        assert!(e.source().is_none());
        assert!(e.to_string().contains("bad"));
    }

    #[test]
    fn send_sync() {
        fn assert_bounds<T: Send + Sync>() {}
        assert_bounds::<ServeError>();
    }
}

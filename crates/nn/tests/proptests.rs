//! Property-based tests for the DNN substrate.

use proptest::prelude::*;
use reuse_nn::{init::Rng64, Activation, BiLstmLayer, LstmCell, LstmState, NetworkBuilder};

fn frame(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec((-50i32..=50).prop_map(|v| v as f32 / 50.0), len)
}

proptest! {
    #[test]
    fn network_forward_is_pure(x in frame(6), seed in 0u64..1000) {
        let net = NetworkBuilder::new("p", 6)
            .seed(seed)
            .fully_connected(5, Activation::Relu)
            .fully_connected(3, Activation::Identity)
            .build()
            .unwrap();
        let a = net.forward_flat(&x).unwrap();
        let b = net.forward_flat(&x).unwrap();
        prop_assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn relu_outputs_nonnegative(x in frame(6)) {
        let net = NetworkBuilder::new("p", 6)
            .fully_connected(4, Activation::Relu)
            .build()
            .unwrap();
        let out = net.forward_flat(&x).unwrap();
        prop_assert!(out.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn lstm_outputs_bounded(x in frame(4), h in frame(3), c in frame(3)) {
        let cell = LstmCell::random(4, 3, &mut Rng64::new(1));
        let state = LstmState { h, c: c.clone() };
        let next = cell.step(&x, &state).unwrap();
        // h = o * tanh(c'), with o in (0,1) and tanh in (-1,1).
        prop_assert!(next.h.iter().all(|v| v.abs() < 1.0));
        // |c'| <= |c| + 1 since f,i in (0,1) and g in (-1,1).
        for (cv, oldc) in next.c.iter().zip(c.iter()) {
            prop_assert!(cv.abs() <= oldc.abs() + 1.0 + 1e-6);
        }
    }

    #[test]
    fn lstm_preactivation_delta_equals_weight_column(
        x in frame(4), h in frame(3), idx in 0usize..4, delta in -1.0f32..1.0
    ) {
        // The exact linearity the paper's Eq. 10 exploits for gates.
        let cell = LstmCell::random(4, 3, &mut Rng64::new(2));
        let pre1 = cell.gate_preactivations(&x, &h).unwrap();
        let mut x2 = x.clone();
        x2[idx] += delta;
        let pre2 = cell.gate_preactivations(&x2, &h).unwrap();
        for g in 0..4 {
            for j in 0..3 {
                let w = cell.w_x(g).as_slice()[idx * 3 + j];
                let expect = pre1[g * 3 + j] + delta * w;
                prop_assert!((pre2[g * 3 + j] - expect).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn bilstm_sequence_reversal_symmetry(xs in proptest::collection::vec(frame(3), 1..6)) {
        // Running the reversed sequence swaps the roles of the two cells'
        // outputs: out_rev[t].fwd_half computed by fwd cell on reversed
        // input equals bwd-like traversal. We check a weaker, exact
        // invariant: lengths and determinism.
        let layer = BiLstmLayer::random(3, 2, &mut Rng64::new(3));
        let a = layer.forward_sequence(&xs).unwrap();
        let b = layer.forward_sequence(&xs).unwrap();
        prop_assert_eq!(a.len(), xs.len());
        prop_assert_eq!(a, b);
    }

    #[test]
    fn identical_cells_make_reversal_exact(xs in proptest::collection::vec(frame(3), 1..6)) {
        // With fwd == bwd cell, processing the reversed sequence mirrors the
        // output halves exactly.
        let cell = LstmCell::random(3, 2, &mut Rng64::new(4));
        let layer = BiLstmLayer::new(cell.clone(), cell).unwrap();
        let out = layer.forward_sequence(&xs).unwrap();
        let mut rev = xs.clone();
        rev.reverse();
        let out_rev = layer.forward_sequence(&rev).unwrap();
        let n = xs.len();
        for t in 0..n {
            let (f, b) = out[t].split_at(2);
            let (f_r, b_r) = out_rev[n - 1 - t].split_at(2);
            for j in 0..2 {
                prop_assert!((f[j] - b_r[j]).abs() < 1e-6);
                prop_assert!((b[j] - f_r[j]).abs() < 1e-6);
            }
        }
    }
}

proptest! {
    #[test]
    fn serialization_round_trips_random_mlps(
        seed in 0u64..200, hidden in 2usize..12, out in 1usize..6
    ) {
        let net = NetworkBuilder::new("p", 5)
            .seed(seed)
            .fully_connected(hidden, Activation::Relu)
            .fully_connected(out, Activation::Identity)
            .build()
            .unwrap();
        let text = reuse_nn::serialize::to_string(&net);
        let back = reuse_nn::serialize::from_str(&text).unwrap();
        let x = [0.3f32, -0.1, 0.7, 0.0, -0.9];
        let out_back = back.forward_flat(&x).unwrap();
        let out_net = net.forward_flat(&x).unwrap();
        prop_assert_eq!(out_back.as_slice(), out_net.as_slice());
    }

    #[test]
    fn unidirectional_lstm_network_runs(seed in 0u64..100, cell in 2usize..6) {
        let net = NetworkBuilder::new("u", 4)
            .seed(seed)
            .lstm(cell)
            .fully_connected(2, Activation::Identity)
            .build()
            .unwrap();
        prop_assert!(net.is_recurrent());
        let frames = vec![vec![0.1f32; 4]; 5];
        let outs = net.forward_sequence(&frames).unwrap();
        prop_assert_eq!(outs.len(), 5);
        prop_assert!(outs.iter().all(|o| o.len() == 2));
        // Determinism across calls.
        let outs2 = net.forward_sequence(&frames).unwrap();
        let last1 = outs.last().unwrap();
        let last2 = outs2.last().unwrap();
        prop_assert_eq!(last1.as_slice(), last2.as_slice());
    }
}

use std::fmt;

use reuse_tensor::TensorError;

/// Errors produced by layer construction and network execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NnError {
    /// A tensor-level error (shape/index mismatch) surfaced during execution.
    Tensor(TensorError),
    /// A layer was configured with inconsistent dimensions.
    InvalidConfig {
        /// Human-readable description of what was inconsistent.
        context: String,
    },
    /// The network received an input whose shape does not match layer 0.
    InputShape {
        /// Expected flat length.
        expected: usize,
        /// Supplied flat length.
        actual: usize,
    },
    /// A sequence operation was invoked on an empty sequence.
    EmptySequence,
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::InvalidConfig { context } => {
                write!(f, "invalid layer configuration: {context}")
            }
            NnError::InputShape { expected, actual } => {
                write!(
                    f,
                    "network input length {actual} does not match expected {expected}"
                )
            }
            NnError::EmptySequence => write!(f, "input sequence must not be empty"),
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_tensor_error_preserves_source() {
        use std::error::Error;
        let err: NnError = TensorError::EmptyShape.into();
        assert!(err.source().is_some());
        assert!(err.to_string().contains("tensor error"));
    }

    #[test]
    fn send_sync() {
        fn assert_bounds<T: Send + Sync>() {}
        assert_bounds::<NnError>();
    }
}

//! Fully-connected layer (paper Eq. 1).

use reuse_tensor::{block, matmul, PackedPanels, ParallelConfig, Shape, Tensor};

use crate::{init, Activation, NnError};

/// A fully-connected layer: `out = act(Wᵀ·x + b)`.
///
/// Weights are stored **input-major** (`[n_inputs, n_outputs]`), mirroring
/// the interleaved Weights Buffer layout of the paper's accelerator
/// (Fig. 7): the `n_outputs` weights fed by a single input are contiguous,
/// which is what the reuse scheme walks when an input changes.
///
/// At construction the weights are additionally repacked once into
/// cache-blocked [`PackedPanels`]; forward passes and the reuse-correction
/// path both run the 16-lane blocked microkernel over that copy (dispatched
/// per [`reuse_tensor::SimdLevel`]: bit-identical to the naive input-major
/// walk under the scalar contract, FMA-fused within
/// [`reuse_tensor::simd::fma_tolerance`] under AVX2).
#[derive(Debug, Clone)]
pub struct FullyConnected {
    weights: Tensor,
    packed: PackedPanels,
    bias: Tensor,
    activation: Activation,
}

impl FullyConnected {
    /// Builds a layer from explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] when `weights` is not rank-2 or
    /// `bias` does not match the output dimension.
    pub fn new(weights: Tensor, bias: Tensor, activation: Activation) -> Result<Self, NnError> {
        let dims = weights.shape().dims();
        if dims.len() != 2 {
            return Err(NnError::InvalidConfig {
                context: format!("fc weights must be rank-2, got {}", weights.shape()),
            });
        }
        if bias.len() != dims[1] {
            return Err(NnError::InvalidConfig {
                context: format!("fc bias length {} != output dim {}", bias.len(), dims[1]),
            });
        }
        let packed = PackedPanels::pack(&weights).expect("rank checked above");
        Ok(FullyConnected {
            weights,
            packed,
            bias,
            activation,
        })
    }

    /// Builds a layer with deterministic pseudo-random parameters.
    pub fn random(
        n_in: usize,
        n_out: usize,
        activation: Activation,
        rng: &mut init::Rng64,
    ) -> Self {
        let w = init::xavier_uniform(rng, n_in, n_out, n_in * n_out);
        let b = init::small_bias(rng, n_out);
        let weights = Tensor::from_vec(Shape::d2(n_in, n_out), w).expect("sized by construction");
        let bias = Tensor::from_vec(Shape::d1(n_out), b).expect("sized by construction");
        let packed = PackedPanels::pack(&weights).expect("rank-2 by construction");
        FullyConnected {
            weights,
            packed,
            bias,
            activation,
        }
    }

    /// Number of inputs.
    pub fn n_in(&self) -> usize {
        self.weights.shape().dims()[0]
    }

    /// Number of output neurons.
    pub fn n_out(&self) -> usize {
        self.weights.shape().dims()[1]
    }

    /// The input-major weight matrix `[n_in, n_out]`.
    pub fn weights(&self) -> &Tensor {
        &self.weights
    }

    /// The cache-blocked panel repack of [`Self::weights`], built once at
    /// construction and shared by the forward and reuse-correction
    /// microkernels.
    pub fn packed(&self) -> &PackedPanels {
        &self.packed
    }

    /// The bias vector `[n_out]`.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// The post-linear activation.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Linear part only (`Wᵀx + b`), before the activation. The reuse
    /// engine buffers and corrects *this* value, then re-applies the
    /// activation (the correction of Eq. 10 is linear).
    ///
    /// # Errors
    ///
    /// Propagates dimension mismatches from the kernel.
    pub fn forward_linear(&self, input: &Tensor) -> Result<Tensor, NnError> {
        self.forward_linear_with(&ParallelConfig::serial(), input)
    }

    /// [`Self::forward_linear`] with an explicit parallelism budget.
    ///
    /// # Errors
    ///
    /// Propagates dimension mismatches from the kernel.
    pub fn forward_linear_with(
        &self,
        config: &ParallelConfig,
        input: &Tensor,
    ) -> Result<Tensor, NnError> {
        let mut out = Vec::new();
        self.forward_linear_into(config, input, &mut out)?;
        Ok(Tensor::from_vec(Shape::d1(self.n_out()), out)?)
    }

    /// Allocation-free linear forward: clears `out` and writes the `n_out`
    /// pre-activation values into it, reusing its capacity across calls.
    /// Runs the cache-blocked packed microkernel at the active
    /// [`reuse_tensor::SimdLevel`]; for any thread count, results are
    /// bit-identical to the naive [`matmul::fc_forward`] walk under the
    /// scalar contract and within [`reuse_tensor::simd::fma_tolerance`] of
    /// it under AVX2 (each output is one fused chain at a fixed level, so
    /// values never depend on worker chunking).
    ///
    /// # Errors
    ///
    /// Propagates dimension mismatches from the kernel.
    pub fn forward_linear_into(
        &self,
        config: &ParallelConfig,
        input: &Tensor,
        out: &mut Vec<f32>,
    ) -> Result<(), NnError> {
        Ok(block::fc_forward_packed_into(
            config,
            &self.packed,
            input.as_slice(),
            self.bias.as_slice(),
            out,
        )?)
    }

    /// Full forward pass including the activation.
    ///
    /// # Errors
    ///
    /// Propagates dimension mismatches from the kernel.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, NnError> {
        Ok(self.activation.apply(&self.forward_linear(input)?))
    }

    /// Parameter count (weights + biases).
    pub fn param_count(&self) -> u64 {
        (self.n_in() * self.n_out() + self.n_out()) as u64
    }

    /// Multiply+add count of a from-scratch execution.
    pub fn flops(&self) -> u64 {
        matmul::fc_flops(self.n_in(), self.n_out())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_matches_manual() {
        let w = Tensor::from_vec(Shape::d2(2, 2), vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let b = Tensor::from_slice_1d(&[1.0, -1.0]).unwrap();
        let fc = FullyConnected::new(w, b, Activation::Identity).unwrap();
        let out = fc
            .forward(&Tensor::from_slice_1d(&[2.0, 3.0]).unwrap())
            .unwrap();
        assert_eq!(out.as_slice(), &[3.0, 2.0]);
    }

    #[test]
    fn relu_applied_after_linear() {
        let w = Tensor::from_vec(Shape::d2(1, 1), vec![1.0]).unwrap();
        let b = Tensor::from_slice_1d(&[0.0]).unwrap();
        let fc = FullyConnected::new(w, b, Activation::Relu).unwrap();
        let out = fc
            .forward(&Tensor::from_slice_1d(&[-5.0]).unwrap())
            .unwrap();
        assert_eq!(out.as_slice(), &[0.0]);
        let lin = fc
            .forward_linear(&Tensor::from_slice_1d(&[-5.0]).unwrap())
            .unwrap();
        assert_eq!(lin.as_slice(), &[-5.0]);
    }

    #[test]
    fn invalid_bias_rejected() {
        let w = Tensor::zeros(Shape::d2(2, 3));
        let b = Tensor::zeros(Shape::d1(2));
        assert!(FullyConnected::new(w, b, Activation::Identity).is_err());
    }

    #[test]
    fn random_layer_is_deterministic() {
        let mut r1 = init::Rng64::new(11);
        let mut r2 = init::Rng64::new(11);
        let a = FullyConnected::random(8, 4, Activation::Relu, &mut r1);
        let b = FullyConnected::random(8, 4, Activation::Relu, &mut r2);
        assert_eq!(a.weights().as_slice(), b.weights().as_slice());
        assert_eq!(a.bias().as_slice(), b.bias().as_slice());
    }

    #[test]
    fn packed_forward_matches_naive_kernel() {
        let mut rng = init::Rng64::new(7);
        // Odd n_out so the last panel is partial.
        let fc = FullyConnected::random(37, 53, Activation::Identity, &mut rng);
        let x: Vec<f32> = (0..37).map(|v| (v as f32) * 0.11 - 2.0).collect();
        let xt = Tensor::from_slice_1d(&x).unwrap();
        let naive = matmul::fc_forward(fc.weights(), &xt, fc.bias()).unwrap();
        let blocked = fc.forward_linear(&xt).unwrap();
        // Bit-identical under the scalar contract; FMA-tolerance-bounded
        // under AVX2 (|x| <= 2, random small weights).
        let tol = reuse_tensor::simd::fma_tolerance(38, 4.0);
        let mismatch =
            reuse_tensor::simd::kernel_mismatch(blocked.as_slice(), naive.as_slice(), tol);
        assert!(mismatch.is_none(), "{}", mismatch.unwrap());
    }

    #[test]
    fn accounting() {
        let mut rng = init::Rng64::new(0);
        let fc = FullyConnected::random(400, 2000, Activation::Relu, &mut rng);
        assert_eq!(fc.param_count(), 400 * 2000 + 2000);
        assert_eq!(fc.flops(), 2 * 400 * 2000);
        assert_eq!((fc.n_in(), fc.n_out()), (400, 2000));
    }
}

//! Network serialization: a versioned, self-describing text format.
//!
//! The format is line-oriented — a header, one `layer` line per layer with
//! its hyperparameters, followed by whitespace-separated parameter values in
//! deterministic order — so models survive toolchain changes and diffs stay
//! reviewable. Floats are written in `{:e}` scientific notation, which Rust
//! round-trips exactly for `f32`.
//!
//! # Example
//!
//! ```
//! use reuse_nn::{serialize, Activation, NetworkBuilder};
//!
//! let net = NetworkBuilder::new("demo", 4)
//!     .fully_connected(8, Activation::Relu)
//!     .fully_connected(2, Activation::Identity)
//!     .build()?;
//! let text = serialize::to_string(&net);
//! let back = serialize::from_str(&text)?;
//! assert_eq!(back.name(), "demo");
//! assert_eq!(
//!     back.forward_flat(&[0.1, 0.2, 0.3, 0.4])?.as_slice(),
//!     net.forward_flat(&[0.1, 0.2, 0.3, 0.4])?.as_slice()
//! );
//! # Ok::<(), reuse_nn::serialize::SerializeError>(())
//! ```

use std::fmt;

use reuse_tensor::conv::{Conv2dSpec, Conv3dSpec};
use reuse_tensor::{Shape, Tensor};

use crate::network::Layer;
use crate::{
    Activation, BiLstmLayer, Conv2dLayer, Conv3dLayer, FullyConnected, LstmCell, Network,
    NetworkBuilder, NnError, Pool2dLayer, Pool3dLayer,
};

/// Format version written in the header.
pub const FORMAT_VERSION: u32 = 1;

/// Errors produced when parsing a serialized network.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SerializeError {
    /// The header is missing or has an unsupported version.
    BadHeader(String),
    /// A structural line could not be parsed.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Parameter data was truncated or oversized.
    BadParameters(String),
    /// The reconstructed network failed validation.
    Nn(NnError),
}

impl fmt::Display for SerializeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SerializeError::BadHeader(m) => write!(f, "bad model header: {m}"),
            SerializeError::BadLine { line, message } => {
                write!(f, "bad model line {line}: {message}")
            }
            SerializeError::BadParameters(m) => write!(f, "bad model parameters: {m}"),
            SerializeError::Nn(e) => write!(f, "invalid reconstructed network: {e}"),
        }
    }
}

impl std::error::Error for SerializeError {}

impl From<NnError> for SerializeError {
    fn from(e: NnError) -> Self {
        SerializeError::Nn(e)
    }
}

fn act_name(a: Activation) -> &'static str {
    a.name()
}

fn act_from(s: &str) -> Option<Activation> {
    match s {
        "identity" => Some(Activation::Identity),
        "relu" => Some(Activation::Relu),
        "sigmoid" => Some(Activation::Sigmoid),
        "tanh" => Some(Activation::Tanh),
        _ => None,
    }
}

fn push_floats(out: &mut String, values: &[f32]) {
    for chunk in values.chunks(16) {
        let line: Vec<String> = chunk.iter().map(|v| format!("{v:e}")).collect();
        out.push_str(&line.join(" "));
        out.push('\n');
    }
}

/// Serializes a network to the text format.
pub fn to_string(net: &Network) -> String {
    let mut out = format!("reuse-dnn-model v{FORMAT_VERSION}\n");
    out.push_str(&format!("name {}\n", net.name().replace(' ', "_")));
    let dims: Vec<String> = net
        .input_shape()
        .dims()
        .iter()
        .map(|d| d.to_string())
        .collect();
    out.push_str(&format!("input {}\n", dims.join(" ")));
    for (name, layer) in net.layers() {
        #[allow(unreachable_patterns)] // future-proofing for new variants
        match layer {
            Layer::FullyConnected(l) => {
                out.push_str(&format!(
                    "layer fc {name} {} {} {}\n",
                    l.n_in(),
                    l.n_out(),
                    act_name(l.activation())
                ));
                push_floats(&mut out, l.weights().as_slice());
                push_floats(&mut out, l.bias().as_slice());
            }
            Layer::Conv2d(l) => {
                let s = l.spec();
                out.push_str(&format!(
                    "layer conv2d {name} {} {} {} {} {} {} {}\n",
                    s.in_channels,
                    s.out_channels,
                    s.kh,
                    s.kw,
                    s.stride,
                    s.pad,
                    act_name(l.activation())
                ));
                push_floats(&mut out, l.weights().as_slice());
                push_floats(&mut out, l.bias().as_slice());
            }
            Layer::Conv3d(l) => {
                let s = l.spec();
                out.push_str(&format!(
                    "layer conv3d {name} {} {} {} {} {} {} {} {}\n",
                    s.in_channels,
                    s.out_channels,
                    s.kd,
                    s.kh,
                    s.kw,
                    s.stride,
                    s.pad,
                    act_name(l.activation())
                ));
                push_floats(&mut out, l.weights().as_slice());
                push_floats(&mut out, l.bias().as_slice());
            }
            Layer::Pool2d(p) => {
                out.push_str(&format!(
                    "layer pool2d {name} {} {} {}\n",
                    p.window, p.stride, p.ceil as u8
                ));
            }
            Layer::Pool3d(p) => {
                out.push_str(&format!(
                    "layer pool3d {name} {} {} {}\n",
                    p.wd, p.whw, p.ceil as u8
                ));
            }
            Layer::Flatten => out.push_str(&format!("layer flatten {name}\n")),
            Layer::GroupMax { group } => out.push_str(&format!("layer groupmax {name} {group}\n")),
            Layer::Lstm(cell) => {
                out.push_str(&format!(
                    "layer lstm {name} {} {}\n",
                    cell.n_in(),
                    cell.cell_dim()
                ));
                push_cell(&mut out, cell);
            }
            Layer::BiLstm(l) => {
                out.push_str(&format!(
                    "layer bilstm {name} {} {}\n",
                    l.n_in(),
                    l.cell_dim()
                ));
                push_cell(&mut out, l.forward_cell());
                push_cell(&mut out, l.backward_cell());
            }
            Layer::Passthrough(p) => {
                out.push_str(&format!("layer passthrough {name} {}\n", p.spec_tokens()));
            }
            _ => unreachable!("all shipped layer kinds are serializable"),
        }
    }
    out
}

fn push_cell(out: &mut String, cell: &LstmCell) {
    for g in 0..4 {
        push_floats(out, cell.w_x(g).as_slice());
        push_floats(out, cell.w_h(g).as_slice());
        push_floats(out, cell.bias(g).as_slice());
    }
}

/// A token reader over the serialized body.
struct Reader<'a> {
    lines: std::iter::Enumerate<std::str::Lines<'a>>,
    /// Tokens pending on the current line.
    pending: Vec<&'a str>,
}

impl<'a> Reader<'a> {
    fn new(text: &'a str) -> Self {
        Reader {
            lines: text.lines().enumerate(),
            pending: Vec::new(),
        }
    }

    /// Next structural line split into tokens (skips parameter leftovers).
    fn next_line(&mut self) -> Option<(usize, Vec<&'a str>)> {
        self.pending.clear();
        for (n, line) in self.lines.by_ref() {
            let trimmed = line.trim();
            if !trimmed.is_empty() {
                return Some((n + 1, trimmed.split_whitespace().collect()));
            }
        }
        None
    }

    /// Reads exactly `count` floats from subsequent lines.
    fn floats(&mut self, count: usize) -> Result<Vec<f32>, SerializeError> {
        let mut values = Vec::with_capacity(count);
        while values.len() < count {
            if self.pending.is_empty() {
                let Some((_, line)) = self.lines.next() else {
                    return Err(SerializeError::BadParameters(format!(
                        "expected {count} values, got {}",
                        values.len()
                    )));
                };
                self.pending = line.split_whitespace().rev().collect();
                continue;
            }
            let tok = self.pending.pop().expect("non-empty pending");
            let v: f32 = tok
                .parse()
                .map_err(|_| SerializeError::BadParameters(format!("not a float: {tok}")))?;
            values.push(v);
        }
        if !self.pending.is_empty() {
            return Err(SerializeError::BadParameters(
                "excess values on parameter line".into(),
            ));
        }
        Ok(values)
    }
}

fn read_cell(r: &mut Reader<'_>, n_in: usize, cell_dim: usize) -> Result<LstmCell, SerializeError> {
    let mut w_x = Vec::with_capacity(4);
    let mut w_h = Vec::with_capacity(4);
    let mut bias = Vec::with_capacity(4);
    for _ in 0..4 {
        let wx = r.floats(n_in * cell_dim)?;
        let wh = r.floats(cell_dim * cell_dim)?;
        let b = r.floats(cell_dim)?;
        w_x.push(Tensor::from_vec(Shape::d2(n_in, cell_dim), wx).map_err(NnError::from)?);
        w_h.push(Tensor::from_vec(Shape::d2(cell_dim, cell_dim), wh).map_err(NnError::from)?);
        bias.push(Tensor::from_vec(Shape::d1(cell_dim), b).map_err(NnError::from)?);
    }
    let to_arr =
        |v: Vec<Tensor>| -> [Tensor; 4] { v.try_into().expect("exactly four gates were pushed") };
    Ok(LstmCell::new(
        n_in,
        cell_dim,
        to_arr(w_x),
        to_arr(w_h),
        to_arr(bias),
    )?)
}

/// Parses a network from the text format.
///
/// # Errors
///
/// Returns a [`SerializeError`] describing the first malformed element.
pub fn from_str(text: &str) -> Result<Network, SerializeError> {
    let mut r = Reader::new(text);
    let (_, header) = r
        .next_line()
        .ok_or_else(|| SerializeError::BadHeader("empty input".into()))?;
    if header.len() != 2
        || header[0] != "reuse-dnn-model"
        || header[1] != format!("v{FORMAT_VERSION}")
    {
        return Err(SerializeError::BadHeader(format!(
            "got {:?}",
            header.join(" ")
        )));
    }
    let (nline, name_tokens) = r
        .next_line()
        .ok_or_else(|| SerializeError::BadHeader("missing name".into()))?;
    if name_tokens.len() != 2 || name_tokens[0] != "name" {
        return Err(SerializeError::BadLine {
            line: nline,
            message: "expected `name <id>`".into(),
        });
    }
    let name = name_tokens[1].to_string();
    let (iline, input_tokens) = r
        .next_line()
        .ok_or_else(|| SerializeError::BadHeader("missing input shape".into()))?;
    if input_tokens.len() < 2 || input_tokens[0] != "input" {
        return Err(SerializeError::BadLine {
            line: iline,
            message: "expected `input <dims...>`".into(),
        });
    }
    let dims: Vec<usize> = input_tokens[1..]
        .iter()
        .map(|t| {
            t.parse().map_err(|_| SerializeError::BadLine {
                line: iline,
                message: format!("bad dim {t}"),
            })
        })
        .collect::<Result<_, _>>()?;
    let input_shape = Shape::new(&dims).map_err(|e| SerializeError::BadLine {
        line: iline,
        message: e.to_string(),
    })?;

    let mut builder = NetworkBuilder::with_input_shape(&name, input_shape);
    // We push fully-built layers directly through the builder's internals by
    // reconstructing them here and using the public extension point below.
    let mut layers: Vec<Layer> = Vec::new();
    while let Some((line, tokens)) = r.next_line() {
        let bad = |message: String| SerializeError::BadLine { line, message };
        if tokens.first() != Some(&"layer") || tokens.len() < 3 {
            return Err(bad("expected `layer <kind> <name> ...`".into()));
        }
        let kind = tokens[1];
        let args = &tokens[3..];
        let parse = |idx: usize| -> Result<usize, SerializeError> {
            args.get(idx)
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| SerializeError::BadLine {
                    line,
                    message: format!("bad integer arg {idx}"),
                })
        };
        match kind {
            "fc" => {
                let (n_in, n_out) = (parse(0)?, parse(1)?);
                let act = args
                    .get(2)
                    .and_then(|t| act_from(t))
                    .ok_or_else(|| bad("bad activation".into()))?;
                let w = r.floats(n_in * n_out)?;
                let b = r.floats(n_out)?;
                let weights = Tensor::from_vec(Shape::d2(n_in, n_out), w).map_err(NnError::from)?;
                let bias = Tensor::from_vec(Shape::d1(n_out), b).map_err(NnError::from)?;
                layers.push(Layer::FullyConnected(FullyConnected::new(
                    weights, bias, act,
                )?));
            }
            "conv2d" => {
                let spec = Conv2dSpec {
                    in_channels: parse(0)?,
                    out_channels: parse(1)?,
                    kh: parse(2)?,
                    kw: parse(3)?,
                    stride: parse(4)?,
                    pad: parse(5)?,
                };
                let act = args
                    .get(6)
                    .and_then(|t| act_from(t))
                    .ok_or_else(|| bad("bad activation".into()))?;
                let w = r.floats(spec.weight_shape().volume())?;
                let b = r.floats(spec.out_channels)?;
                let weights = Tensor::from_vec(spec.weight_shape(), w).map_err(NnError::from)?;
                let bias =
                    Tensor::from_vec(Shape::d1(spec.out_channels), b).map_err(NnError::from)?;
                layers.push(Layer::Conv2d(Conv2dLayer::new(spec, weights, bias, act)?));
            }
            "conv3d" => {
                let spec = Conv3dSpec {
                    in_channels: parse(0)?,
                    out_channels: parse(1)?,
                    kd: parse(2)?,
                    kh: parse(3)?,
                    kw: parse(4)?,
                    stride: parse(5)?,
                    pad: parse(6)?,
                };
                let act = args
                    .get(7)
                    .and_then(|t| act_from(t))
                    .ok_or_else(|| bad("bad activation".into()))?;
                let w = r.floats(spec.weight_shape().volume())?;
                let b = r.floats(spec.out_channels)?;
                let weights = Tensor::from_vec(spec.weight_shape(), w).map_err(NnError::from)?;
                let bias =
                    Tensor::from_vec(Shape::d1(spec.out_channels), b).map_err(NnError::from)?;
                layers.push(Layer::Conv3d(Conv3dLayer::new(spec, weights, bias, act)?));
            }
            "pool2d" => {
                layers.push(Layer::Pool2d(Pool2dLayer {
                    window: parse(0)?,
                    stride: parse(1)?,
                    ceil: parse(2)? == 1,
                }));
            }
            "pool3d" => {
                layers.push(Layer::Pool3d(Pool3dLayer::new(
                    parse(0)?,
                    parse(1)?,
                    parse(2)? == 1,
                )));
            }
            "flatten" => layers.push(Layer::Flatten),
            "passthrough" => {
                let layer = crate::PassthroughLayer::from_spec_tokens(args)
                    .ok_or_else(|| bad("bad passthrough descriptor".into()))?;
                layers.push(Layer::Passthrough(layer));
            }
            "groupmax" => layers.push(Layer::GroupMax { group: parse(0)? }),
            "lstm" => {
                let (n_in, cell_dim) = (parse(0)?, parse(1)?);
                layers.push(Layer::Lstm(read_cell(&mut r, n_in, cell_dim)?));
            }
            "bilstm" => {
                let (n_in, cell_dim) = (parse(0)?, parse(1)?);
                let fwd = read_cell(&mut r, n_in, cell_dim)?;
                let bwd = read_cell(&mut r, n_in, cell_dim)?;
                layers.push(Layer::BiLstm(BiLstmLayer::new(fwd, bwd)?));
            }
            other => return Err(bad(format!("unknown layer kind {other}"))),
        }
    }
    for layer in layers {
        builder = builder.push_layer(layer);
    }
    Ok(builder.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reuse_tensor::Shape as TShape;

    fn mlp() -> Network {
        NetworkBuilder::new("mlp", 6)
            .seed(5)
            .fully_connected(8, Activation::Relu)
            .group_max(2)
            .fully_connected(3, Activation::Identity)
            .build()
            .unwrap()
    }

    #[test]
    fn mlp_round_trip_is_bit_exact() {
        let net = mlp();
        let text = to_string(&net);
        let back = from_str(&text).unwrap();
        assert_eq!(back.name(), net.name());
        let x = [0.11f32, -0.7, 0.3, 0.9, -0.2, 0.05];
        assert_eq!(
            back.forward_flat(&x).unwrap().as_slice(),
            net.forward_flat(&x).unwrap().as_slice()
        );
    }

    #[test]
    fn cnn_round_trip_is_bit_exact() {
        let net = NetworkBuilder::with_input_shape("cnn", TShape::d3(2, 6, 6))
            .seed(7)
            .conv2d(3, 3, 1, 1, Activation::Relu)
            .pool2d(2)
            .flatten()
            .fully_connected(4, Activation::Identity)
            .build()
            .unwrap();
        let text = to_string(&net);
        let back = from_str(&text).unwrap();
        let x: Vec<f32> = (0..72).map(|i| (i as f32 / 72.0) - 0.5).collect();
        assert_eq!(
            back.forward_flat(&x).unwrap().as_slice(),
            net.forward_flat(&x).unwrap().as_slice()
        );
    }

    #[test]
    fn conv3d_round_trip() {
        let net = NetworkBuilder::with_input_shape("c3", TShape::d4(1, 4, 4, 4))
            .seed(8)
            .conv3d(2, 3, 1, 1, Activation::Relu)
            .pool3d(2, 2, true)
            .flatten()
            .fully_connected(2, Activation::Identity)
            .build()
            .unwrap();
        let back = from_str(&to_string(&net)).unwrap();
        let x = vec![0.25f32; 64];
        assert_eq!(
            back.forward_flat(&x).unwrap().as_slice(),
            net.forward_flat(&x).unwrap().as_slice()
        );
    }

    #[test]
    fn recurrent_round_trip() {
        let net = NetworkBuilder::new("rnn", 5)
            .seed(9)
            .lstm(3)
            .bilstm(2)
            .fully_connected(2, Activation::Identity)
            .build()
            .unwrap();
        let back = from_str(&to_string(&net)).unwrap();
        let frames = vec![vec![0.1f32; 5], vec![0.2; 5], vec![-0.1; 5]];
        let a = net.forward_sequence(&frames).unwrap();
        let b = back.forward_sequence(&frames).unwrap();
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.as_slice(), y.as_slice());
        }
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(matches!(from_str(""), Err(SerializeError::BadHeader(_))));
        assert!(matches!(
            from_str("wrong v1\n"),
            Err(SerializeError::BadHeader(_))
        ));
        let mut text = to_string(&mlp());
        // Truncate parameters.
        text.truncate(text.len() / 2);
        assert!(from_str(&text).is_err());
    }

    #[test]
    fn unknown_layer_kind_rejected() {
        let text = "reuse-dnn-model v1\nname x\ninput 4\nlayer warp w1 4\n";
        assert!(matches!(
            from_str(text),
            Err(SerializeError::BadLine { .. })
        ));
    }

    #[test]
    fn layer_names_are_regenerated_consistently() {
        let net = mlp();
        let back = from_str(&to_string(&net)).unwrap();
        let names: Vec<&str> = back.layers().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["fc1", "groupmax1", "fc2"]);
    }
}

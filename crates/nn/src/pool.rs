//! Max-pooling layers.
//!
//! Pooling layers carry no weights, so the paper excludes them from the
//! reuse scheme (Table I note); they still matter for shape plumbing and for
//! the accelerator's op accounting.

use reuse_tensor::conv::{max_pool2d_mode, max_pool3d_mode};
use reuse_tensor::Tensor;

use crate::NnError;

/// A 2D max-pooling layer with a square window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool2dLayer {
    /// Window side length.
    pub window: usize,
    /// Stride (usually equal to `window`).
    pub stride: usize,
    /// Emit a final partial window when the stride does not divide evenly.
    pub ceil: bool,
}

impl Pool2dLayer {
    /// Square non-overlapping pooling (stride = window, floor mode).
    pub fn square(window: usize) -> Self {
        Pool2dLayer {
            window,
            stride: window,
            ceil: false,
        }
    }

    /// Runs the pooling operation.
    ///
    /// # Errors
    ///
    /// Propagates window/shape mismatches from the kernel.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, NnError> {
        Ok(max_pool2d_mode(input, self.window, self.stride, self.ceil)?)
    }
}

/// A 3D max-pooling layer with independent temporal and spatial windows
/// (C3D convention: pool1 is 1×2×2, the rest 2×2×2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool3dLayer {
    /// Temporal (depth) window; stride equals the window.
    pub wd: usize,
    /// Spatial window (applied to both height and width); stride equals it.
    pub whw: usize,
    /// Emit final partial windows (Caffe/C3D ceil mode).
    pub ceil: bool,
}

impl Pool3dLayer {
    /// Creates a pooling layer with the C3D window convention.
    pub fn new(wd: usize, whw: usize, ceil: bool) -> Self {
        Pool3dLayer { wd, whw, ceil }
    }

    /// Runs the pooling operation.
    ///
    /// # Errors
    ///
    /// Propagates window/shape mismatches from the kernel.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, NnError> {
        Ok(max_pool3d_mode(input, self.wd, self.whw, self.ceil)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reuse_tensor::Shape;

    #[test]
    fn square_pool_halves_dimensions() {
        let layer = Pool2dLayer::square(2);
        let input = Tensor::from_fn(Shape::d3(2, 4, 4), |i| i as f32);
        let out = layer.forward(&input).unwrap();
        assert_eq!(out.shape().dims(), &[2, 2, 2]);
    }

    #[test]
    fn pool3d_c3d_chain_shapes() {
        // The C3D feature-map chain from Table I:
        // 64x16x112x112 -pool 1x2x2-> 64x16x56x56
        let input = Tensor::zeros(Shape::d4(2, 16, 112, 112));
        let p1 = Pool3dLayer::new(1, 2, false).forward(&input).unwrap();
        assert_eq!(p1.shape().dims(), &[2, 16, 56, 56]);
        // 128x16x56x56 -pool 2x2x2-> 128x8x28x28
        let input2 = Tensor::zeros(Shape::d4(2, 16, 56, 56));
        let p2 = Pool3dLayer::new(2, 2, false).forward(&input2).unwrap();
        assert_eq!(p2.shape().dims(), &[2, 8, 28, 28]);
    }

    #[test]
    fn pool3d_ceil_final_stage() {
        // 512x2x7x7 -pool 2x2x2 ceil-> 512x1x4x4 (8192 inputs for FC1).
        let input = Tensor::zeros(Shape::d4(4, 2, 7, 7));
        let out = Pool3dLayer::new(2, 2, true).forward(&input).unwrap();
        assert_eq!(out.shape().dims(), &[4, 1, 4, 4]);
    }

    #[test]
    fn oversized_window_errors() {
        let input = Tensor::zeros(Shape::d3(1, 2, 2));
        assert!(Pool2dLayer::square(4).forward(&input).is_err());
    }
}

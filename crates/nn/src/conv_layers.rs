//! Convolutional layers (paper Eq. 2) wrapping the direct kernels in
//! `reuse-tensor`.

use reuse_tensor::conv::{
    conv2d_forward, conv2d_forward_with, conv3d_forward, conv3d_forward_with, Conv2dSpec,
    Conv3dSpec,
};
use reuse_tensor::{ParallelConfig, Shape, Tensor};

use crate::{init, Activation, NnError};

/// A 2D convolutional layer.
#[derive(Debug, Clone)]
pub struct Conv2dLayer {
    spec: Conv2dSpec,
    weights: Tensor,
    bias: Tensor,
    activation: Activation,
}

impl Conv2dLayer {
    /// Builds a layer from explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] when the weight or bias tensors do
    /// not match the spec.
    pub fn new(
        spec: Conv2dSpec,
        weights: Tensor,
        bias: Tensor,
        activation: Activation,
    ) -> Result<Self, NnError> {
        if weights.shape() != &spec.weight_shape() {
            return Err(NnError::InvalidConfig {
                context: format!(
                    "conv2d weights {} != spec {}",
                    weights.shape(),
                    spec.weight_shape()
                ),
            });
        }
        if bias.len() != spec.out_channels {
            return Err(NnError::InvalidConfig {
                context: format!(
                    "conv2d bias {} != out_channels {}",
                    bias.len(),
                    spec.out_channels
                ),
            });
        }
        Ok(Conv2dLayer {
            spec,
            weights,
            bias,
            activation,
        })
    }

    /// Builds a layer with deterministic pseudo-random parameters.
    pub fn random(spec: Conv2dSpec, activation: Activation, rng: &mut init::Rng64) -> Self {
        let fan_in = spec.in_channels * spec.kh * spec.kw;
        let count = spec.weight_shape().volume();
        let w = init::he_normal(rng, fan_in, count);
        let b = init::small_bias(rng, spec.out_channels);
        let weights = Tensor::from_vec(spec.weight_shape(), w).expect("sized by construction");
        let bias =
            Tensor::from_vec(Shape::d1(spec.out_channels), b).expect("sized by construction");
        Conv2dLayer {
            spec,
            weights,
            bias,
            activation,
        }
    }

    /// The convolution geometry.
    pub fn spec(&self) -> &Conv2dSpec {
        &self.spec
    }

    /// Filter weights `[out_c, in_c, kh, kw]`.
    pub fn weights(&self) -> &Tensor {
        &self.weights
    }

    /// Per-filter biases.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// The post-linear activation.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Linear part only (pre-activation feature maps).
    ///
    /// # Errors
    ///
    /// Propagates dimension mismatches from the kernel.
    pub fn forward_linear(&self, input: &Tensor) -> Result<Tensor, NnError> {
        Ok(conv2d_forward(
            &self.spec,
            input,
            &self.weights,
            &self.bias,
        )?)
    }

    /// [`Self::forward_linear`] with an explicit parallelism budget (output
    /// channels are partitioned; results are bit-identical to serial).
    ///
    /// # Errors
    ///
    /// Propagates dimension mismatches from the kernel.
    pub fn forward_linear_with(
        &self,
        config: &ParallelConfig,
        input: &Tensor,
    ) -> Result<Tensor, NnError> {
        Ok(conv2d_forward_with(
            config,
            &self.spec,
            input,
            &self.weights,
            &self.bias,
        )?)
    }

    /// Full forward pass including the activation.
    ///
    /// # Errors
    ///
    /// Propagates dimension mismatches from the kernel.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, NnError> {
        Ok(self.activation.apply(&self.forward_linear(input)?))
    }

    /// Parameter count (weights + biases).
    pub fn param_count(&self) -> u64 {
        (self.spec.weight_shape().volume() + self.spec.out_channels) as u64
    }
}

/// A 3D convolutional layer (C3D-style).
#[derive(Debug, Clone)]
pub struct Conv3dLayer {
    spec: Conv3dSpec,
    weights: Tensor,
    bias: Tensor,
    activation: Activation,
}

impl Conv3dLayer {
    /// Builds a layer from explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] when the weight or bias tensors do
    /// not match the spec.
    pub fn new(
        spec: Conv3dSpec,
        weights: Tensor,
        bias: Tensor,
        activation: Activation,
    ) -> Result<Self, NnError> {
        if weights.shape() != &spec.weight_shape() {
            return Err(NnError::InvalidConfig {
                context: format!(
                    "conv3d weights {} != spec {}",
                    weights.shape(),
                    spec.weight_shape()
                ),
            });
        }
        if bias.len() != spec.out_channels {
            return Err(NnError::InvalidConfig {
                context: format!(
                    "conv3d bias {} != out_channels {}",
                    bias.len(),
                    spec.out_channels
                ),
            });
        }
        Ok(Conv3dLayer {
            spec,
            weights,
            bias,
            activation,
        })
    }

    /// Builds a layer with deterministic pseudo-random parameters.
    pub fn random(spec: Conv3dSpec, activation: Activation, rng: &mut init::Rng64) -> Self {
        let fan_in = spec.in_channels * spec.kd * spec.kh * spec.kw;
        let count = spec.weight_shape().volume();
        let w = init::he_normal(rng, fan_in, count);
        let b = init::small_bias(rng, spec.out_channels);
        let weights = Tensor::from_vec(spec.weight_shape(), w).expect("sized by construction");
        let bias =
            Tensor::from_vec(Shape::d1(spec.out_channels), b).expect("sized by construction");
        Conv3dLayer {
            spec,
            weights,
            bias,
            activation,
        }
    }

    /// The convolution geometry.
    pub fn spec(&self) -> &Conv3dSpec {
        &self.spec
    }

    /// Filter weights `[out_c, in_c, kd, kh, kw]`.
    pub fn weights(&self) -> &Tensor {
        &self.weights
    }

    /// Per-filter biases.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// The post-linear activation.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Linear part only (pre-activation feature maps).
    ///
    /// # Errors
    ///
    /// Propagates dimension mismatches from the kernel.
    pub fn forward_linear(&self, input: &Tensor) -> Result<Tensor, NnError> {
        Ok(conv3d_forward(
            &self.spec,
            input,
            &self.weights,
            &self.bias,
        )?)
    }

    /// [`Self::forward_linear`] with an explicit parallelism budget (output
    /// filters are partitioned; results are bit-identical to serial).
    ///
    /// # Errors
    ///
    /// Propagates dimension mismatches from the kernel.
    pub fn forward_linear_with(
        &self,
        config: &ParallelConfig,
        input: &Tensor,
    ) -> Result<Tensor, NnError> {
        Ok(conv3d_forward_with(
            config,
            &self.spec,
            input,
            &self.weights,
            &self.bias,
        )?)
    }

    /// Full forward pass including the activation.
    ///
    /// # Errors
    ///
    /// Propagates dimension mismatches from the kernel.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, NnError> {
        Ok(self.activation.apply(&self.forward_linear(input)?))
    }

    /// Parameter count (weights + biases).
    pub fn param_count(&self) -> u64 {
        (self.spec.weight_shape().volume() + self.spec.out_channels) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv2d_layer_forward_applies_activation() {
        let spec = Conv2dSpec {
            in_channels: 1,
            out_channels: 1,
            kh: 1,
            kw: 1,
            stride: 1,
            pad: 0,
        };
        let w = Tensor::from_vec(spec.weight_shape(), vec![-1.0]).unwrap();
        let b = Tensor::from_slice_1d(&[0.0]).unwrap();
        let layer = Conv2dLayer::new(spec, w, b, Activation::Relu).unwrap();
        let input = Tensor::from_vec(Shape::d3(1, 1, 2), vec![1.0, -1.0]).unwrap();
        let out = layer.forward(&input).unwrap();
        assert_eq!(out.as_slice(), &[0.0, 1.0]);
        let lin = layer.forward_linear(&input).unwrap();
        assert_eq!(lin.as_slice(), &[-1.0, 1.0]);
    }

    #[test]
    fn conv2d_layer_rejects_mismatched_weights() {
        let spec = Conv2dSpec {
            in_channels: 1,
            out_channels: 2,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 0,
        };
        let w = Tensor::zeros(Shape::d4(1, 1, 3, 3));
        let b = Tensor::zeros(Shape::d1(2));
        assert!(Conv2dLayer::new(spec, w, b, Activation::Identity).is_err());
    }

    #[test]
    fn conv3d_layer_random_is_deterministic() {
        let spec = Conv3dSpec {
            in_channels: 2,
            out_channels: 3,
            kd: 3,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        };
        let a = Conv3dLayer::random(spec, Activation::Relu, &mut init::Rng64::new(5));
        let b = Conv3dLayer::random(spec, Activation::Relu, &mut init::Rng64::new(5));
        assert_eq!(a.weights().as_slice(), b.weights().as_slice());
        assert_eq!(a.param_count(), (3 * 2 * 27 + 3) as u64);
    }
}

//! Deterministic pseudo-random weight initialization.
//!
//! The paper evaluates trained models; we substitute deterministic
//! pseudo-random weights with variance scaled to keep activations in a
//! stable range (He/Xavier-style fan-in scaling). Everything is seeded, so
//! every experiment in the workspace reproduces bit-for-bit.
//!
//! The generator is a self-contained SplitMix64 — we deliberately avoid a
//! `rand` dependency in this low-level crate so its output can never drift
//! with upstream versions.

/// A small, fast, deterministic 64-bit generator (SplitMix64).
///
/// # Example
///
/// ```
/// use reuse_nn::init::Rng64;
///
/// let mut a = Rng64::new(42);
/// let mut b = Rng64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Rng64 {
            state: seed.wrapping_add(0x9E3779B97F4A7C15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Uniform `f32` in `[-limit, limit)`.
    pub fn uniform(&mut self, limit: f32) -> f32 {
        (self.next_f32() * 2.0 - 1.0) * limit
    }

    /// Standard normal via Box-Muller (one value per call; simple and
    /// deterministic).
    pub fn normal(&mut self) -> f32 {
        // Guard against log(0).
        let u1 = self.next_f32().max(f32::MIN_POSITIVE);
        let u2 = self.next_f32();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Derives an independent child generator; used to give each layer its
    /// own stream so inserting a layer does not reshuffle the others.
    pub fn fork(&mut self, stream: u64) -> Rng64 {
        Rng64::new(self.next_u64() ^ stream.wrapping_mul(0xA24BAED4963EE407))
    }
}

/// Xavier/Glorot-uniform weights for a `fan_in × fan_out` dense layer.
pub fn xavier_uniform(rng: &mut Rng64, fan_in: usize, fan_out: usize, count: usize) -> Vec<f32> {
    let limit = (6.0 / (fan_in as f32 + fan_out as f32)).sqrt();
    (0..count).map(|_| rng.uniform(limit)).collect()
}

/// He-normal weights appropriate before a ReLU.
pub fn he_normal(rng: &mut Rng64, fan_in: usize, count: usize) -> Vec<f32> {
    let std = (2.0 / fan_in as f32).sqrt();
    (0..count).map(|_| rng.normal() * std).collect()
}

/// Small uniform biases in `[-0.05, 0.05)`.
pub fn small_bias(rng: &mut Rng64, count: usize) -> Vec<f32> {
    (0..count).map(|_| rng.uniform(0.05)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng64::new(7);
        let mut b = Rng64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f32_stays_in_unit_interval() {
        let mut rng = Rng64::new(3);
        for _ in 0..1000 {
            let v = rng.next_f32();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn uniform_respects_limit() {
        let mut rng = Rng64::new(4);
        for _ in 0..1000 {
            let v = rng.uniform(0.3);
            assert!(v.abs() <= 0.3);
        }
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut rng = Rng64::new(5);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }

    #[test]
    fn xavier_limit_shrinks_with_fan() {
        let mut rng = Rng64::new(6);
        let w = xavier_uniform(&mut rng, 4096, 4096, 1000);
        let limit = (6.0f32 / 8192.0).sqrt();
        assert!(w.iter().all(|v| v.abs() <= limit));
    }

    #[test]
    fn he_normal_scales_std() {
        let mut rng = Rng64::new(8);
        let w = he_normal(&mut rng, 800, 20_000);
        let std = (w.iter().map(|v| v * v).sum::<f32>() / w.len() as f32).sqrt();
        let expected = (2.0f32 / 800.0).sqrt();
        assert!(
            (std - expected).abs() / expected < 0.1,
            "std {std} vs {expected}"
        );
    }

    #[test]
    fn fork_streams_are_independent_and_reproducible() {
        let mut parent1 = Rng64::new(9);
        let mut parent2 = Rng64::new(9);
        let mut c1 = parent1.fork(0);
        let mut c2 = parent2.fork(0);
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut c3 = parent1.fork(1);
        assert_ne!(c1.next_u64(), c3.next_u64());
    }
}

//! LSTM cell and bidirectional LSTM layer (paper Section II-C, Figs. 2-3).
//!
//! An LSTM cell keeps a cell state `c_t` updated through four gates — input
//! `i`, forget `f`, cell-updater `g` and output `o` — each implemented as a
//! fully-connected layer over two inputs: the feed-forward input `x_t` and
//! the recurrent input `h_{t-1}` (paper Eqs. 3-8).
//!
//! The reuse scheme corrects the **pre-activation** of each gate (the linear
//! sums `W_x·x + W_h·h + b`), so the cell exposes
//! [`LstmCell::gate_preactivations`] separately from the nonlinear state
//! update [`LstmCell::step_from_preactivations`].

use reuse_tensor::{Shape, Tensor};

use crate::{init, Activation, NnError};

/// Number of gates in an LSTM cell (i, f, g, o).
pub const NUM_GATES: usize = 4;

/// Gate index for the input gate `i` (Eq. 3).
pub const GATE_I: usize = 0;
/// Gate index for the forget gate `f` (Eq. 4).
pub const GATE_F: usize = 1;
/// Gate index for the cell-updater gate `g` (Eq. 5).
pub const GATE_G: usize = 2;
/// Gate index for the output gate `o` (Eq. 6).
pub const GATE_O: usize = 3;

/// Recurrent state of one LSTM cell: the hidden output `h` and cell state `c`.
#[derive(Debug, Clone, PartialEq)]
pub struct LstmState {
    /// Hidden output vector `h_t` (length = cell dimension).
    pub h: Vec<f32>,
    /// Cell state vector `c_t` (length = cell dimension).
    pub c: Vec<f32>,
}

impl LstmState {
    /// A zeroed state (the start-of-sequence convention).
    pub fn zeros(cell_dim: usize) -> Self {
        LstmState {
            h: vec![0.0; cell_dim],
            c: vec![0.0; cell_dim],
        }
    }
}

/// One LSTM cell with four gates.
///
/// Weight layout per gate is input-major like FC layers: `w_x[gate]` is
/// `[n_in, cell_dim]` and `w_h[gate]` is `[cell_dim, cell_dim]`, so the
/// weights fed by a single input element are contiguous — the layout the
/// reuse correction walks.
#[derive(Debug, Clone)]
pub struct LstmCell {
    n_in: usize,
    cell_dim: usize,
    /// Feed-forward weights per gate, each `[n_in, cell_dim]`.
    w_x: [Tensor; NUM_GATES],
    /// Recurrent weights per gate, each `[cell_dim, cell_dim]`.
    w_h: [Tensor; NUM_GATES],
    /// Bias per gate, each `[cell_dim]`.
    bias: [Tensor; NUM_GATES],
}

impl LstmCell {
    /// Builds a cell from explicit per-gate parameters ordered `[i, f, g, o]`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if any tensor shape disagrees.
    pub fn new(
        n_in: usize,
        cell_dim: usize,
        w_x: [Tensor; NUM_GATES],
        w_h: [Tensor; NUM_GATES],
        bias: [Tensor; NUM_GATES],
    ) -> Result<Self, NnError> {
        for g in 0..NUM_GATES {
            if w_x[g].shape().dims() != [n_in, cell_dim] {
                return Err(NnError::InvalidConfig {
                    context: format!(
                        "gate {g} w_x shape {} != [{n_in}, {cell_dim}]",
                        w_x[g].shape()
                    ),
                });
            }
            if w_h[g].shape().dims() != [cell_dim, cell_dim] {
                return Err(NnError::InvalidConfig {
                    context: format!(
                        "gate {g} w_h shape {} != [{cell_dim}, {cell_dim}]",
                        w_h[g].shape()
                    ),
                });
            }
            if bias[g].len() != cell_dim {
                return Err(NnError::InvalidConfig {
                    context: format!("gate {g} bias length {} != {cell_dim}", bias[g].len()),
                });
            }
        }
        Ok(LstmCell {
            n_in,
            cell_dim,
            w_x,
            w_h,
            bias,
        })
    }

    /// Builds a cell with deterministic pseudo-random parameters.
    pub fn random(n_in: usize, cell_dim: usize, rng: &mut init::Rng64) -> Self {
        let mk_x = |rng: &mut init::Rng64| {
            Tensor::from_vec(
                Shape::d2(n_in, cell_dim),
                init::xavier_uniform(rng, n_in, cell_dim, n_in * cell_dim),
            )
            .expect("sized by construction")
        };
        let mk_h = |rng: &mut init::Rng64| {
            Tensor::from_vec(
                Shape::d2(cell_dim, cell_dim),
                init::xavier_uniform(rng, cell_dim, cell_dim, cell_dim * cell_dim),
            )
            .expect("sized by construction")
        };
        let mk_b = |rng: &mut init::Rng64, forget: bool| {
            let mut b = init::small_bias(rng, cell_dim);
            if forget {
                // The usual unit forget-gate bias keeps early cell states alive.
                for v in &mut b {
                    *v += 1.0;
                }
            }
            Tensor::from_vec(Shape::d1(cell_dim), b).expect("sized by construction")
        };
        let w_x = [mk_x(rng), mk_x(rng), mk_x(rng), mk_x(rng)];
        let w_h = [mk_h(rng), mk_h(rng), mk_h(rng), mk_h(rng)];
        let bias = [
            mk_b(rng, false),
            mk_b(rng, true),
            mk_b(rng, false),
            mk_b(rng, false),
        ];
        LstmCell {
            n_in,
            cell_dim,
            w_x,
            w_h,
            bias,
        }
    }

    /// Feed-forward input dimension.
    pub fn n_in(&self) -> usize {
        self.n_in
    }

    /// Cell (and hidden) dimension.
    pub fn cell_dim(&self) -> usize {
        self.cell_dim
    }

    /// Feed-forward weights of one gate, `[n_in, cell_dim]` input-major.
    pub fn w_x(&self, gate: usize) -> &Tensor {
        &self.w_x[gate]
    }

    /// Recurrent weights of one gate, `[cell_dim, cell_dim]` input-major.
    pub fn w_h(&self, gate: usize) -> &Tensor {
        &self.w_h[gate]
    }

    /// Bias of one gate.
    pub fn bias(&self, gate: usize) -> &Tensor {
        &self.bias[gate]
    }

    /// Computes the linear pre-activations of all four gates:
    /// `pre[g] = W_x[g]·x + W_h[g]·h + b[g]`, returned as a
    /// `[NUM_GATES, cell_dim]` row-major matrix.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShape`] when `x` or `h` have wrong lengths.
    pub fn gate_preactivations(&self, x: &[f32], h: &[f32]) -> Result<Vec<f32>, NnError> {
        if x.len() != self.n_in {
            return Err(NnError::InputShape {
                expected: self.n_in,
                actual: x.len(),
            });
        }
        if h.len() != self.cell_dim {
            return Err(NnError::InputShape {
                expected: self.cell_dim,
                actual: h.len(),
            });
        }
        let mut pre = vec![0.0f32; NUM_GATES * self.cell_dim];
        for g in 0..NUM_GATES {
            let dst = &mut pre[g * self.cell_dim..(g + 1) * self.cell_dim];
            dst.copy_from_slice(self.bias[g].as_slice());
            accumulate_input_major(self.w_x[g].as_slice(), x, dst);
            accumulate_input_major(self.w_h[g].as_slice(), h, dst);
        }
        Ok(pre)
    }

    /// Completes one cell step from precomputed gate pre-activations
    /// (paper Eqs. 3-8): applies σ/φ, updates `c` and produces `h`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `pre` is not `NUM_GATES × cell_dim` or the
    /// state dimension disagrees.
    pub fn step_from_preactivations(&self, pre: &[f32], state: &LstmState) -> LstmState {
        let mut next = state.clone();
        self.step_from_preactivations_in_place(pre, &mut next);
        next
    }

    /// In-place variant of [`Self::step_from_preactivations`] — advances
    /// `state` to the next timestep without allocating. The cell update
    /// (Eq. 7) reads each `c[j]` before overwriting it, so updating
    /// elementwise is exact.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `pre` is not `NUM_GATES × cell_dim` or the
    /// state dimension disagrees.
    pub fn step_from_preactivations_in_place(&self, pre: &[f32], state: &mut LstmState) {
        debug_assert_eq!(pre.len(), NUM_GATES * self.cell_dim);
        debug_assert_eq!(state.c.len(), self.cell_dim);
        let d = self.cell_dim;
        let sig = Activation::Sigmoid;
        let tanh = Activation::Tanh;
        for j in 0..d {
            let i = sig.apply_scalar(pre[GATE_I * d + j]);
            let f = sig.apply_scalar(pre[GATE_F * d + j]);
            let g = tanh.apply_scalar(pre[GATE_G * d + j]);
            let o = sig.apply_scalar(pre[GATE_O * d + j]);
            let c = f * state.c[j] + i * g; // Eq. 7
            state.c[j] = c;
            state.h[j] = o * tanh.apply_scalar(c); // Eq. 8
        }
    }

    /// One full cell step: pre-activations + nonlinear update.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShape`] when `x` has the wrong length.
    pub fn step(&self, x: &[f32], state: &LstmState) -> Result<LstmState, NnError> {
        let pre = self.gate_preactivations(x, &state.h)?;
        Ok(self.step_from_preactivations(&pre, state))
    }

    /// Processes a whole sequence unidirectionally from a zero state,
    /// returning one `[cell_dim]` hidden output per timestep (the paper's
    /// "one (unidirectional) LSTM cell" recurrent-layer variant).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptySequence`] on empty input and
    /// [`NnError::InputShape`] when frames have the wrong length.
    pub fn forward_sequence(&self, xs: &[Vec<f32>]) -> Result<Vec<Vec<f32>>, NnError> {
        if xs.is_empty() {
            return Err(NnError::EmptySequence);
        }
        let mut state = LstmState::zeros(self.cell_dim);
        let mut out = Vec::with_capacity(xs.len());
        for x in xs {
            state = self.step(x, &state)?;
            out.push(state.h.clone());
        }
        Ok(out)
    }

    /// Parameter count across the four gates.
    pub fn param_count(&self) -> u64 {
        (NUM_GATES * (self.n_in * self.cell_dim + self.cell_dim * self.cell_dim + self.cell_dim))
            as u64
    }

    /// Multiply+add count of one from-scratch cell step (linear part).
    pub fn flops_per_step(&self) -> u64 {
        2 * (NUM_GATES * (self.n_in + self.cell_dim) * self.cell_dim) as u64
    }
}

/// `dst[j] += Σ_i w[i][j]·v[i]` with `w` stored input-major `[len(v), len(dst)]`.
///
/// The per-row axpy is dispatched on the resolved SIMD level (see
/// `reuse_tensor::simd`): identical separate mul-then-add under the scalar
/// level, fused multiply-add under AVX2. The `vi == 0.0` skip is exact at
/// both levels (skipping a zero contribution never changes the sum).
fn accumulate_input_major(w: &[f32], v: &[f32], dst: &mut [f32]) {
    let n_out = dst.len();
    for (i, &vi) in v.iter().enumerate() {
        if vi == 0.0 {
            continue;
        }
        let row = &w[i * n_out..(i + 1) * n_out];
        reuse_tensor::simd::row_axpy(dst, row, vi);
    }
}

/// A bidirectional LSTM layer (paper Fig. 2): one cell runs the sequence
/// forward, a second runs it backward, and per-timestep outputs are the
/// concatenation `[h_fwd ; h_bwd]`.
#[derive(Debug, Clone)]
pub struct BiLstmLayer {
    fwd: LstmCell,
    bwd: LstmCell,
}

impl BiLstmLayer {
    /// Builds a layer from two explicit cells.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if the two cells disagree in
    /// dimensions.
    pub fn new(fwd: LstmCell, bwd: LstmCell) -> Result<Self, NnError> {
        if fwd.n_in() != bwd.n_in() || fwd.cell_dim() != bwd.cell_dim() {
            return Err(NnError::InvalidConfig {
                context: "forward and backward cells must share dimensions".into(),
            });
        }
        Ok(BiLstmLayer { fwd, bwd })
    }

    /// Builds a layer with deterministic pseudo-random parameters.
    pub fn random(n_in: usize, cell_dim: usize, rng: &mut init::Rng64) -> Self {
        BiLstmLayer {
            fwd: LstmCell::random(n_in, cell_dim, rng),
            bwd: LstmCell::random(n_in, cell_dim, rng),
        }
    }

    /// Feed-forward input dimension of both cells.
    pub fn n_in(&self) -> usize {
        self.fwd.n_in()
    }

    /// Cell dimension of each direction; the layer output is twice this.
    pub fn cell_dim(&self) -> usize {
        self.fwd.cell_dim()
    }

    /// Output dimension per timestep (`2 × cell_dim`).
    pub fn n_out(&self) -> usize {
        2 * self.cell_dim()
    }

    /// The forward-direction cell.
    pub fn forward_cell(&self) -> &LstmCell {
        &self.fwd
    }

    /// The backward-direction cell.
    pub fn backward_cell(&self) -> &LstmCell {
        &self.bwd
    }

    /// Processes a whole sequence, returning one `[2·cell_dim]` output per
    /// timestep (forward states concatenated with time-aligned backward
    /// states).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptySequence`] on empty input and
    /// [`NnError::InputShape`] when frames have the wrong length.
    pub fn forward_sequence(&self, xs: &[Vec<f32>]) -> Result<Vec<Vec<f32>>, NnError> {
        if xs.is_empty() {
            return Err(NnError::EmptySequence);
        }
        let d = self.cell_dim();
        let mut out = vec![vec![0.0f32; 2 * d]; xs.len()];
        let mut state = LstmState::zeros(d);
        for (t, x) in xs.iter().enumerate() {
            state = self.fwd.step(x, &state)?;
            out[t][..d].copy_from_slice(&state.h);
        }
        let mut state = LstmState::zeros(d);
        for (t, x) in xs.iter().enumerate().rev() {
            state = self.bwd.step(x, &state)?;
            out[t][d..].copy_from_slice(&state.h);
        }
        Ok(out)
    }

    /// Parameter count of both cells.
    pub fn param_count(&self) -> u64 {
        self.fwd.param_count() + self.bwd.param_count()
    }

    /// Multiply+add count per timestep (both directions).
    pub fn flops_per_step(&self) -> u64 {
        self.fwd.flops_per_step() + self.bwd.flops_per_step()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cell() -> LstmCell {
        LstmCell::random(3, 2, &mut init::Rng64::new(42))
    }

    #[test]
    fn zero_state_and_zero_input_yield_bounded_outputs() {
        let cell = tiny_cell();
        let s = cell.step(&[0.0; 3], &LstmState::zeros(2)).unwrap();
        for &h in &s.h {
            assert!(h.abs() <= 1.0, "h bounded by tanh×sigmoid");
        }
    }

    #[test]
    fn step_matches_manual_gate_equations() {
        // Construct a cell with known weights: identity-ish single-dim cell.
        let w1 = Tensor::from_vec(Shape::d2(1, 1), vec![1.0]).unwrap();
        let wh0 = Tensor::from_vec(Shape::d2(1, 1), vec![0.0]).unwrap();
        let b0 = Tensor::from_slice_1d(&[0.0]).unwrap();
        let cell = LstmCell::new(
            1,
            1,
            [w1.clone(), w1.clone(), w1.clone(), w1.clone()],
            [wh0.clone(), wh0.clone(), wh0.clone(), wh0.clone()],
            [b0.clone(), b0.clone(), b0.clone(), b0.clone()],
        )
        .unwrap();
        let x = 0.7f32;
        let state = LstmState {
            h: vec![0.0],
            c: vec![0.5],
        };
        let next = cell.step(&[x], &state).unwrap();
        let sig = |v: f32| 1.0 / (1.0 + (-v).exp());
        let i = sig(x);
        let f = sig(x);
        let g = x.tanh();
        let o = sig(x);
        let c = f * 0.5 + i * g;
        let h = o * c.tanh();
        assert!((next.c[0] - c).abs() < 1e-6);
        assert!((next.h[0] - h).abs() < 1e-6);
    }

    #[test]
    fn preactivations_are_linear_in_inputs() {
        let cell = tiny_cell();
        let x1 = [0.3, -0.2, 0.5];
        let h = [0.1, -0.1];
        let pre1 = cell.gate_preactivations(&x1, &h).unwrap();
        // Changing one input by delta shifts pre-activations by delta*w.
        let mut x2 = x1;
        x2[1] += 0.25;
        let pre2 = cell.gate_preactivations(&x2, &h).unwrap();
        for g in 0..NUM_GATES {
            for j in 0..2 {
                let w = cell.w_x(g).as_slice()[2 + j];
                let expect = pre1[g * 2 + j] + 0.25 * w;
                assert!((pre2[g * 2 + j] - expect).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn wrong_input_length_is_rejected() {
        let cell = tiny_cell();
        assert!(matches!(
            cell.step(&[0.0; 4], &LstmState::zeros(2)),
            Err(NnError::InputShape {
                expected: 3,
                actual: 4
            })
        ));
    }

    #[test]
    fn bilstm_output_concatenates_directions() {
        let layer = BiLstmLayer::random(3, 2, &mut init::Rng64::new(1));
        let xs = vec![
            vec![0.1, 0.2, 0.3],
            vec![0.2, 0.1, 0.0],
            vec![-0.1, 0.0, 0.1],
        ];
        let out = layer.forward_sequence(&xs).unwrap();
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|o| o.len() == 4));
        // The backward half at t=last equals a single backward step from zero
        // state on xs[last].
        let bwd_state = layer
            .backward_cell()
            .step(&xs[2], &LstmState::zeros(2))
            .unwrap();
        assert_eq!(&out[2][2..], bwd_state.h.as_slice());
        // The forward half at t=0 equals a single forward step from zero state.
        let fwd_state = layer
            .forward_cell()
            .step(&xs[0], &LstmState::zeros(2))
            .unwrap();
        assert_eq!(&out[0][..2], fwd_state.h.as_slice());
    }

    #[test]
    fn empty_sequence_is_rejected() {
        let layer = BiLstmLayer::random(3, 2, &mut init::Rng64::new(1));
        assert!(matches!(
            layer.forward_sequence(&[]),
            Err(NnError::EmptySequence)
        ));
    }

    #[test]
    fn accounting_eesen_layer() {
        // EESEN BiLSTM2: in 640, cell 320.
        let layer = BiLstmLayer::random(640, 320, &mut init::Rng64::new(2));
        assert_eq!(layer.n_out(), 640);
        let per_cell = 4 * (640 * 320 + 320 * 320 + 320);
        assert_eq!(layer.param_count(), 2 * per_cell as u64);
        assert_eq!(
            layer.flops_per_step(),
            2 * 2 * (4 * (640 + 320) * 320) as u64
        );
    }

    #[test]
    fn mismatched_direction_cells_rejected() {
        let a = LstmCell::random(3, 2, &mut init::Rng64::new(1));
        let b = LstmCell::random(4, 2, &mut init::Rng64::new(1));
        assert!(BiLstmLayer::new(a, b).is_err());
    }
}

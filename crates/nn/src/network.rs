//! Sequential network container with shape inference and accounting.

use reuse_tensor::conv::{Conv2dSpec, Conv3dSpec};
use reuse_tensor::{Shape, Tensor};

use crate::{
    init::Rng64, Activation, BiLstmLayer, Conv2dLayer, Conv3dLayer, FullyConnected, LstmCell,
    NnError, PassthroughLayer, PassthroughOp, Pool2dLayer, Pool3dLayer,
};

/// One layer of a sequential [`Network`].
///
/// Variants embed their full parameter tensors; the size spread between a
/// `Flatten` and a `Conv3d` is intentional — layers live in one `Vec` per
/// network and are never moved on the hot path.
#[derive(Debug, Clone)]
#[non_exhaustive]
#[allow(clippy::large_enum_variant)]
pub enum Layer {
    /// Fully-connected layer (paper Eq. 1).
    FullyConnected(FullyConnected),
    /// 2D convolution (AutoPilot-style).
    Conv2d(Conv2dLayer),
    /// 3D convolution (C3D-style, paper Eq. 2).
    Conv3d(Conv3dLayer),
    /// 2D max pooling.
    Pool2d(Pool2dLayer),
    /// 3D max pooling.
    Pool3d(Pool3dLayer),
    /// Reshape to a flat vector (CNN → FC transition).
    Flatten,
    /// Maxout-style group reduction: the flat input is split into
    /// consecutive groups of `group` elements and each group reduces to its
    /// maximum. Kaldi's generalized-maxout networks use this to go from
    /// 2000 activations to 400 inputs (paper Table I).
    GroupMax {
        /// Elements per group.
        group: usize,
    },
    /// Unidirectional LSTM over sequences (a recurrent layer with one
    /// cell, paper Section II-C).
    Lstm(LstmCell),
    /// Bidirectional LSTM over sequences (paper Fig. 2).
    BiLstm(BiLstmLayer),
    /// Recompute-always fallback for ingested ops the reuse scheme cannot
    /// correct incrementally (softmax, general pooling, standalone
    /// activations). See [`crate::passthrough`].
    Passthrough(PassthroughLayer),
}

/// Coarse layer classification used in reports and by the accelerator model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Fully-connected.
    Fc,
    /// Convolutional (2D or 3D).
    Conv,
    /// Pooling (no weights).
    Pool,
    /// Shape-only transformation.
    Reshape,
    /// Recurrent (LSTM).
    Recurrent,
    /// Recompute-always fallback from graph ingestion: weightless, charged
    /// at full cost every frame, excluded from reuse/policy decisions.
    Passthrough,
}

impl Layer {
    /// The coarse kind of this layer.
    pub fn kind(&self) -> LayerKind {
        match self {
            Layer::FullyConnected(_) => LayerKind::Fc,
            Layer::Conv2d(_) | Layer::Conv3d(_) => LayerKind::Conv,
            Layer::Pool2d(_) | Layer::Pool3d(_) | Layer::GroupMax { .. } => LayerKind::Pool,
            Layer::Flatten => LayerKind::Reshape,
            Layer::Lstm(_) | Layer::BiLstm(_) => LayerKind::Recurrent,
            Layer::Passthrough(_) => LayerKind::Passthrough,
        }
    }

    /// Whether the layer carries weights (and is therefore a candidate for
    /// the reuse scheme).
    pub fn has_weights(&self) -> bool {
        !matches!(
            self.kind(),
            LayerKind::Pool | LayerKind::Reshape | LayerKind::Passthrough
        )
    }

    /// Parameter count of this layer.
    pub fn param_count(&self) -> u64 {
        match self {
            Layer::FullyConnected(l) => l.param_count(),
            Layer::Conv2d(l) => l.param_count(),
            Layer::Conv3d(l) => l.param_count(),
            Layer::Lstm(l) => l.param_count(),
            Layer::BiLstm(l) => l.param_count(),
            Layer::Pool2d(_)
            | Layer::Pool3d(_)
            | Layer::Flatten
            | Layer::GroupMax { .. }
            | Layer::Passthrough(_) => 0,
        }
    }

    /// Output shape for a given input shape, computed analytically (no
    /// forward pass, so this is cheap even for C3D-sized layers).
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] when the input shape is incompatible.
    pub fn output_shape(&self, input: &Shape) -> Result<Shape, NnError> {
        match self {
            Layer::FullyConnected(l) => {
                if input.volume() != l.n_in() {
                    return Err(NnError::InputShape {
                        expected: l.n_in(),
                        actual: input.volume(),
                    });
                }
                Ok(Shape::d1(l.n_out()))
            }
            Layer::Conv2d(l) => {
                let d = input.dims();
                if d.len() != 3 || d[0] != l.spec().in_channels {
                    return Err(NnError::InvalidConfig {
                        context: format!(
                            "conv2d expects [{}, h, w], got {input}",
                            l.spec().in_channels
                        ),
                    });
                }
                let (oh, ow) = l.spec().output_hw(d[1], d[2])?;
                Ok(Shape::d3(l.spec().out_channels, oh, ow))
            }
            Layer::Conv3d(l) => {
                let d = input.dims();
                if d.len() != 4 || d[0] != l.spec().in_channels {
                    return Err(NnError::InvalidConfig {
                        context: format!(
                            "conv3d expects [{}, d, h, w], got {input}",
                            l.spec().in_channels
                        ),
                    });
                }
                let (od, oh, ow) = l.spec().output_dhw(d[1], d[2], d[3])?;
                Ok(Shape::d3(l.spec().out_channels, od, oh).and_then_4th(ow))
            }
            Layer::Pool2d(p) => {
                let d = input.dims();
                if d.len() != 3 {
                    return Err(NnError::InvalidConfig {
                        context: format!("pool2d expects [c,h,w], got {input}"),
                    });
                }
                let oh = pool_extent(d[1], p.window, p.stride, p.ceil);
                let ow = pool_extent(d[2], p.window, p.stride, p.ceil);
                if oh == 0 || ow == 0 {
                    return Err(NnError::InvalidConfig {
                        context: format!("pool window does not fit {input}"),
                    });
                }
                Ok(Shape::d3(d[0], oh, ow))
            }
            Layer::Pool3d(p) => {
                let d = input.dims();
                if d.len() != 4 {
                    return Err(NnError::InvalidConfig {
                        context: format!("pool3d expects [c,d,h,w], got {input}"),
                    });
                }
                let od = pool_extent(d[1], p.wd, p.wd, p.ceil);
                let oh = pool_extent(d[2], p.whw, p.whw, p.ceil);
                let ow = pool_extent(d[3], p.whw, p.whw, p.ceil);
                if od == 0 || oh == 0 || ow == 0 {
                    return Err(NnError::InvalidConfig {
                        context: format!("pool window does not fit {input}"),
                    });
                }
                Ok(Shape::d4(d[0], od, oh, ow))
            }
            Layer::Flatten => Ok(Shape::d1(input.volume())),
            Layer::GroupMax { group } => {
                if *group == 0 || !input.volume().is_multiple_of(*group) {
                    return Err(NnError::InvalidConfig {
                        context: format!(
                            "group_max({group}) does not divide input volume {}",
                            input.volume()
                        ),
                    });
                }
                Ok(Shape::d1(input.volume() / group))
            }
            Layer::Lstm(l) => {
                if input.volume() != l.n_in() {
                    return Err(NnError::InputShape {
                        expected: l.n_in(),
                        actual: input.volume(),
                    });
                }
                Ok(Shape::d1(l.cell_dim()))
            }
            Layer::BiLstm(l) => {
                if input.volume() != l.n_in() {
                    return Err(NnError::InputShape {
                        expected: l.n_in(),
                        actual: input.volume(),
                    });
                }
                Ok(Shape::d1(l.n_out()))
            }
            Layer::Passthrough(p) => p.output_shape(input),
        }
    }

    /// Whether the layer is recurrent (consumes whole sequences rather than
    /// independent frames).
    pub fn is_recurrent(&self) -> bool {
        matches!(self, Layer::Lstm(_) | Layer::BiLstm(_))
    }

    /// The activation applied after the linear part of a weighted
    /// frame-wise layer. `None` for pooling/reshape layers (no activation)
    /// and recurrent layers (their nonlinearity is internal to the cell).
    pub fn activation(&self) -> Option<Activation> {
        match self {
            Layer::FullyConnected(l) => Some(l.activation()),
            Layer::Conv2d(l) => Some(l.activation()),
            Layer::Conv3d(l) => Some(l.activation()),
            _ => None,
        }
    }

    /// Serial linear (pre-activation) forward pass of a weighted frame-wise
    /// layer — the exact baseline the reuse engine's drift watchdog adopts.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for layers without a frame-wise
    /// linear part (pooling, reshape, recurrent) and propagates shape
    /// errors.
    pub fn forward_linear(&self, input: &Tensor) -> Result<Tensor, NnError> {
        match self {
            Layer::FullyConnected(l) => l.forward_linear(input),
            Layer::Conv2d(l) => l.forward_linear(input),
            Layer::Conv3d(l) => l.forward_linear(input),
            _ => Err(NnError::InvalidConfig {
                context: "forward_linear requires a weighted frame-wise layer".into(),
            }),
        }
    }

    /// Full-precision sequence pass of a recurrent layer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for non-recurrent layers and
    /// propagates shape errors.
    pub fn forward_sequence(&self, xs: &[Vec<f32>]) -> Result<Vec<Vec<f32>>, NnError> {
        match self {
            Layer::Lstm(l) => l.forward_sequence(xs),
            Layer::BiLstm(l) => l.forward_sequence(xs),
            _ => Err(NnError::InvalidConfig {
                context: "forward_sequence requires a recurrent layer".into(),
            }),
        }
    }

    /// Multiply+add count of a from-scratch execution on `input`.
    pub fn flops(&self, input: &Shape) -> u64 {
        match self {
            Layer::FullyConnected(l) => l.flops(),
            Layer::Conv2d(l) => {
                let d = input.dims();
                l.spec().flops(d[1], d[2])
            }
            Layer::Conv3d(l) => {
                let d = input.dims();
                l.spec().flops(d[1], d[2], d[3])
            }
            Layer::Lstm(l) => l.flops_per_step(),
            Layer::BiLstm(l) => l.flops_per_step(),
            Layer::Passthrough(p) => p.flops(input),
            Layer::Pool2d(_) | Layer::Pool3d(_) | Layer::Flatten | Layer::GroupMax { .. } => 0,
        }
    }
}

trait ShapeExt {
    fn and_then_4th(self, w: usize) -> Shape;
}

impl ShapeExt for Shape {
    fn and_then_4th(self, w: usize) -> Shape {
        let mut dims: Vec<usize> = self.into();
        dims.push(w);
        Shape::new(&dims).expect("dimensions already validated")
    }
}

fn pool_extent(size: usize, window: usize, stride: usize, ceil: bool) -> usize {
    if size < window {
        return 0;
    }
    let span = size - window;
    if ceil && !span.is_multiple_of(stride) {
        span / stride + 2
    } else {
        span / stride + 1
    }
}

/// A named, sequential feed-forward / recurrent network.
///
/// Build one with [`NetworkBuilder`]; run it with [`Network::forward`] (one
/// frame) or [`Network::forward_sequence`] (a temporal sequence, required
/// when the network contains recurrent layers).
#[derive(Debug, Clone)]
pub struct Network {
    name: String,
    input_shape: Shape,
    layers: Vec<(String, Layer)>,
    /// Input shape of each layer (same index as `layers`).
    layer_inputs: Vec<Shape>,
    output_shape: Shape,
}

impl Network {
    /// The network's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The expected input shape of one frame.
    pub fn input_shape(&self) -> &Shape {
        &self.input_shape
    }

    /// The output shape of one execution.
    pub fn output_shape(&self) -> &Shape {
        &self.output_shape
    }

    /// The layers with their names.
    pub fn layers(&self) -> &[(String, Layer)] {
        &self.layers
    }

    /// The input shape each layer sees.
    pub fn layer_input_shapes(&self) -> &[Shape] {
        &self.layer_inputs
    }

    /// Whether the network contains recurrent layers.
    pub fn is_recurrent(&self) -> bool {
        self.layers.iter().any(|(_, l)| l.is_recurrent())
    }

    /// Total parameter count.
    pub fn param_count(&self) -> u64 {
        self.layers.iter().map(|(_, l)| l.param_count()).sum()
    }

    /// Model size in bytes at 32-bit precision.
    pub fn model_bytes(&self) -> u64 {
        self.param_count() * 4
    }

    /// Total multiply+add count of one from-scratch execution.
    pub fn flops(&self) -> u64 {
        self.layers
            .iter()
            .zip(self.layer_inputs.iter())
            .map(|((_, l), s)| l.flops(s))
            .sum()
    }

    /// Applies a single frame-wise layer by index, reshaping the input to
    /// the layer's inferred input shape if needed. Used by the reuse engine
    /// to run passive and reuse-disabled layers.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for recurrent layers (they cannot
    /// run frame-wise) and propagates shape errors.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn apply_layer(&self, index: usize, input: Tensor) -> Result<Tensor, NnError> {
        let (_, layer) = &self.layers[index];
        apply_layer(layer, input, &self.layer_inputs[index])
    }

    /// Runs one frame through the network.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if the network is recurrent (use
    /// [`Network::forward_sequence`]) and propagates shape errors.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, NnError> {
        if self.is_recurrent() {
            return Err(NnError::InvalidConfig {
                context: "recurrent network requires forward_sequence".into(),
            });
        }
        if input.shape() != &self.input_shape {
            return Err(NnError::InputShape {
                expected: self.input_shape.volume(),
                actual: input.len(),
            });
        }
        let mut cur = input.clone();
        for ((_, layer), in_shape) in self.layers.iter().zip(self.layer_inputs.iter()) {
            cur = apply_layer(layer, cur, in_shape)?;
        }
        Ok(cur)
    }

    /// Convenience wrapper: runs a flat slice through the network.
    ///
    /// # Errors
    ///
    /// Same as [`Network::forward`].
    pub fn forward_flat(&self, input: &[f32]) -> Result<Tensor, NnError> {
        if input.len() != self.input_shape.volume() {
            return Err(NnError::InputShape {
                expected: self.input_shape.volume(),
                actual: input.len(),
            });
        }
        let t = Tensor::from_vec(self.input_shape.clone(), input.to_vec())?;
        self.forward(&t)
    }

    /// Runs a temporal sequence through the network. Frame-wise layers map
    /// over the sequence; recurrent layers transform it (paper Fig. 2).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptySequence`] on empty input and propagates
    /// shape errors.
    pub fn forward_sequence(&self, frames: &[Vec<f32>]) -> Result<Vec<Tensor>, NnError> {
        if frames.is_empty() {
            return Err(NnError::EmptySequence);
        }
        let mut seq: Vec<Tensor> = frames
            .iter()
            .map(|f| {
                if f.len() != self.input_shape.volume() {
                    return Err(NnError::InputShape {
                        expected: self.input_shape.volume(),
                        actual: f.len(),
                    });
                }
                Ok(Tensor::from_vec(self.input_shape.clone(), f.clone())?)
            })
            .collect::<Result<_, _>>()?;
        for ((_, layer), in_shape) in self.layers.iter().zip(self.layer_inputs.iter()) {
            if layer.is_recurrent() {
                let xs: Vec<Vec<f32>> = seq.iter().map(|t| t.as_slice().to_vec()).collect();
                let out = layer.forward_sequence(&xs)?;
                seq = out
                    .into_iter()
                    .map(|o| Tensor::from_slice_1d(&o).map_err(NnError::from))
                    .collect::<Result<_, _>>()?;
            } else {
                seq = seq
                    .into_iter()
                    .map(|t| apply_layer(layer, t, in_shape))
                    .collect::<Result<_, _>>()?;
            }
        }
        Ok(seq)
    }
}

fn apply_layer(layer: &Layer, input: Tensor, in_shape: &Shape) -> Result<Tensor, NnError> {
    // Frame tensors may arrive flat (e.g. after an FC layer); reshape to the
    // inferred layer input shape first.
    let input = if input.shape() == in_shape {
        input
    } else {
        input.reshape(in_shape.clone())?
    };
    match layer {
        Layer::FullyConnected(l) => {
            let flat = input.reshape(Shape::d1(in_shape.volume()))?;
            l.forward(&flat)
        }
        Layer::Conv2d(l) => l.forward(&input),
        Layer::Conv3d(l) => l.forward(&input),
        Layer::Pool2d(p) => p.forward(&input),
        Layer::Pool3d(p) => p.forward(&input),
        Layer::Flatten => Ok(input.reshape(Shape::d1(in_shape.volume()))?),
        Layer::GroupMax { group } => {
            let flat = input.reshape(Shape::d1(in_shape.volume()))?;
            let data = flat.as_slice();
            let out: Vec<f32> = data
                .chunks(*group)
                .map(|chunk| chunk.iter().cloned().fold(f32::NEG_INFINITY, f32::max))
                .collect();
            Ok(Tensor::from_vec(Shape::d1(out.len()), out)?)
        }
        Layer::Passthrough(p) => p.forward(&input),
        Layer::Lstm(_) | Layer::BiLstm(_) => Err(NnError::InvalidConfig {
            context: "recurrent layer cannot run frame-wise".into(),
        }),
    }
}

/// Incremental builder for [`Network`]s with shape inference.
///
/// # Example
///
/// ```
/// use reuse_nn::{Activation, NetworkBuilder};
/// use reuse_tensor::Shape;
///
/// let cnn = NetworkBuilder::with_input_shape("toy-cnn", Shape::d3(1, 8, 8))
///     .conv2d(4, 3, 1, 0, Activation::Relu)
///     .pool2d(2)
///     .flatten()
///     .fully_connected(10, Activation::Identity)
///     .build()?;
/// assert_eq!(cnn.output_shape().dims(), &[10]);
/// # Ok::<(), reuse_nn::NnError>(())
/// ```
#[derive(Debug)]
pub struct NetworkBuilder {
    name: String,
    input_shape: Shape,
    rng: Rng64,
    layers: Vec<(String, Layer)>,
    error: Option<NnError>,
    cur_shape: Shape,
    counter: usize,
}

impl NetworkBuilder {
    /// Starts a network that takes flat vectors of length `input_len`.
    pub fn new(name: &str, input_len: usize) -> Self {
        Self::with_input_shape(name, Shape::d1(input_len))
    }

    /// Starts a network with an explicit input shape (CNNs).
    pub fn with_input_shape(name: &str, input_shape: Shape) -> Self {
        NetworkBuilder {
            name: name.to_string(),
            cur_shape: input_shape.clone(),
            input_shape,
            rng: Rng64::new(0xDADA_D1A0),
            layers: Vec::new(),
            error: None,
            counter: 0,
        }
    }

    /// Overrides the weight-initialization seed (default is fixed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.rng = Rng64::new(seed);
        self
    }

    fn push(mut self, base: &str, layer: Layer) -> Self {
        if self.error.is_some() {
            return self;
        }
        match layer.output_shape(&self.cur_shape) {
            Ok(out) => {
                self.counter += 1;
                // Per-kind numbering, matching the paper's layer names
                // (FC1..FC6, CONV1..CONV8, BiLSTM1..BiLSTM5).
                let nth = self
                    .layers
                    .iter()
                    .filter(|(name, _)| {
                        name.starts_with(base)
                            && name[base.len()..].chars().all(|c| c.is_ascii_digit())
                    })
                    .count()
                    + 1;
                let name = format!("{base}{nth}");
                self.layers.push((name, layer));
                self.cur_shape = out;
            }
            Err(e) => self.error = Some(e),
        }
        self
    }

    /// Appends a fully-connected layer with deterministic random weights.
    pub fn fully_connected(mut self, n_out: usize, act: Activation) -> Self {
        if self.error.is_some() {
            return self;
        }
        let n_in = self.cur_shape.volume();
        let mut rng = self.rng.fork(self.counter as u64);
        let layer = FullyConnected::random(n_in, n_out, act, &mut rng);
        self.push("fc", Layer::FullyConnected(layer))
    }

    /// Appends a 2D convolution with deterministic random weights.
    pub fn conv2d(
        mut self,
        out_channels: usize,
        k: usize,
        stride: usize,
        pad: usize,
        act: Activation,
    ) -> Self {
        if self.error.is_some() {
            return self;
        }
        let dims = self.cur_shape.dims();
        if dims.len() != 3 {
            self.error = Some(NnError::InvalidConfig {
                context: format!(
                    "conv2d needs a [c,h,w] input, current shape {}",
                    self.cur_shape
                ),
            });
            return self;
        }
        let spec = Conv2dSpec {
            in_channels: dims[0],
            out_channels,
            kh: k,
            kw: k,
            stride,
            pad,
        };
        let mut rng = self.rng.fork(self.counter as u64);
        let layer = Conv2dLayer::random(spec, act, &mut rng);
        self.push("conv", Layer::Conv2d(layer))
    }

    /// Appends a 3D convolution with deterministic random weights.
    pub fn conv3d(
        mut self,
        out_channels: usize,
        k: usize,
        stride: usize,
        pad: usize,
        act: Activation,
    ) -> Self {
        if self.error.is_some() {
            return self;
        }
        let dims = self.cur_shape.dims();
        if dims.len() != 4 {
            self.error = Some(NnError::InvalidConfig {
                context: format!(
                    "conv3d needs a [c,d,h,w] input, current shape {}",
                    self.cur_shape
                ),
            });
            return self;
        }
        let spec = Conv3dSpec {
            in_channels: dims[0],
            out_channels,
            kd: k,
            kh: k,
            kw: k,
            stride,
            pad,
        };
        let mut rng = self.rng.fork(self.counter as u64);
        let layer = Conv3dLayer::random(spec, act, &mut rng);
        self.push("conv", Layer::Conv3d(layer))
    }

    /// Appends a non-overlapping square 2D max pool.
    pub fn pool2d(self, window: usize) -> Self {
        self.push("pool", Layer::Pool2d(Pool2dLayer::square(window)))
    }

    /// Appends a 3D max pool with the C3D window convention.
    pub fn pool3d(self, wd: usize, whw: usize, ceil: bool) -> Self {
        self.push("pool", Layer::Pool3d(Pool3dLayer::new(wd, whw, ceil)))
    }

    /// Appends a flatten (reshape-to-vector) step.
    pub fn flatten(self) -> Self {
        self.push("flatten", Layer::Flatten)
    }

    /// Appends a maxout-style group reduction over the flat input.
    pub fn group_max(self, group: usize) -> Self {
        self.push("groupmax", Layer::GroupMax { group })
    }

    /// Appends a recompute-always passthrough op (ingestion fallback).
    pub fn passthrough(self, op: PassthroughOp) -> Self {
        self.push("pass", Layer::Passthrough(PassthroughLayer::new(op)))
    }

    /// Appends a unidirectional LSTM layer with deterministic random
    /// weights.
    pub fn lstm(mut self, cell_dim: usize) -> Self {
        if self.error.is_some() {
            return self;
        }
        let n_in = self.cur_shape.volume();
        let mut rng = self.rng.fork(self.counter as u64);
        let layer = LstmCell::random(n_in, cell_dim, &mut rng);
        self.push("lstm", Layer::Lstm(layer))
    }

    /// Appends a bidirectional LSTM layer with deterministic random weights.
    pub fn bilstm(mut self, cell_dim: usize) -> Self {
        if self.error.is_some() {
            return self;
        }
        let n_in = self.cur_shape.volume();
        let mut rng = self.rng.fork(self.counter as u64);
        let layer = BiLstmLayer::random(n_in, cell_dim, &mut rng);
        self.push("bilstm", Layer::BiLstm(layer))
    }

    /// Appends a pre-built layer (used by deserialization and by callers
    /// that construct layers with explicit parameters). The layer name is
    /// derived from its kind, like the other builder methods.
    pub fn push_layer(self, layer: Layer) -> Self {
        #[allow(unreachable_patterns)] // future-proofing for new variants
        let base = match &layer {
            Layer::FullyConnected(_) => "fc",
            Layer::Conv2d(_) | Layer::Conv3d(_) => "conv",
            Layer::Pool2d(_) | Layer::Pool3d(_) => "pool",
            Layer::Flatten => "flatten",
            Layer::GroupMax { .. } => "groupmax",
            Layer::Lstm(_) => "lstm",
            Layer::BiLstm(_) => "bilstm",
            Layer::Passthrough(_) => "pass",
            _ => "layer",
        };
        self.push(base, layer)
    }

    /// Finalizes the network.
    ///
    /// # Errors
    ///
    /// Returns the first configuration error encountered while chaining, or
    /// [`NnError::InvalidConfig`] for an empty network.
    pub fn build(self) -> Result<Network, NnError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if self.layers.is_empty() {
            return Err(NnError::InvalidConfig {
                context: "network must have at least one layer".into(),
            });
        }
        // Re-derive each layer's input shape from the chain.
        let mut layer_inputs = Vec::with_capacity(self.layers.len());
        let mut cur = self.input_shape.clone();
        for (_, layer) in &self.layers {
            layer_inputs.push(cur.clone());
            cur = layer.output_shape(&cur)?;
        }
        Ok(Network {
            name: self.name,
            input_shape: self.input_shape,
            layers: self.layers,
            layer_inputs,
            output_shape: cur,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlp_shapes_and_forward() {
        let net = NetworkBuilder::new("mlp", 4)
            .fully_connected(8, Activation::Relu)
            .fully_connected(3, Activation::Identity)
            .build()
            .unwrap();
        assert_eq!(net.output_shape().dims(), &[3]);
        assert_eq!(net.layers().len(), 2);
        assert!(!net.is_recurrent());
        let out = net.forward_flat(&[0.1, 0.2, 0.3, 0.4]).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn forward_is_deterministic_given_seed() {
        let mk = || {
            NetworkBuilder::new("mlp", 4)
                .seed(7)
                .fully_connected(8, Activation::Relu)
                .fully_connected(3, Activation::Identity)
                .build()
                .unwrap()
        };
        let a = mk().forward_flat(&[0.1, 0.2, 0.3, 0.4]).unwrap();
        let b = mk().forward_flat(&[0.1, 0.2, 0.3, 0.4]).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn cnn_shape_inference() {
        let net = NetworkBuilder::with_input_shape("cnn", Shape::d3(3, 16, 16))
            .conv2d(8, 3, 1, 1, Activation::Relu)
            .pool2d(2)
            .conv2d(16, 3, 1, 0, Activation::Relu)
            .flatten()
            .fully_connected(10, Activation::Identity)
            .build()
            .unwrap();
        // 3x16x16 -> 8x16x16 -> 8x8x8 -> 16x6x6 -> 576 -> 10.
        assert_eq!(net.layer_input_shapes()[3].dims(), &[16, 6, 6]);
        assert_eq!(net.output_shape().dims(), &[10]);
        let input = Tensor::zeros(Shape::d3(3, 16, 16));
        let out = net.forward(&input).unwrap();
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn conv3d_network_shapes() {
        let net = NetworkBuilder::with_input_shape("c3d-ish", Shape::d4(2, 4, 8, 8))
            .conv3d(4, 3, 1, 1, Activation::Relu)
            .pool3d(1, 2, false)
            .conv3d(8, 3, 1, 1, Activation::Relu)
            .pool3d(2, 2, false)
            .flatten()
            .fully_connected(5, Activation::Identity)
            .build()
            .unwrap();
        // 2x4x8x8 -> 4x4x8x8 -> 4x4x4x4 -> 8x4x4x4 -> 8x2x2x2 -> 64 -> 5
        assert_eq!(net.output_shape().dims(), &[5]);
        let out = net.forward(&Tensor::zeros(Shape::d4(2, 4, 8, 8))).unwrap();
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn recurrent_network_requires_sequence_api() {
        let net = NetworkBuilder::new("rnn", 6)
            .bilstm(4)
            .fully_connected(2, Activation::Identity)
            .build()
            .unwrap();
        assert!(net.is_recurrent());
        assert!(net.forward(&Tensor::zeros(Shape::d1(6))).is_err());
        let frames = vec![vec![0.0; 6]; 3];
        let outs = net.forward_sequence(&frames).unwrap();
        assert_eq!(outs.len(), 3);
        assert!(outs.iter().all(|o| o.len() == 2));
    }

    #[test]
    fn builder_reports_shape_errors() {
        let err = NetworkBuilder::new("bad", 4)
            .conv2d(8, 3, 1, 0, Activation::Relu) // flat input, not [c,h,w]
            .build()
            .unwrap_err();
        assert!(matches!(err, NnError::InvalidConfig { .. }));
    }

    #[test]
    fn empty_network_rejected() {
        assert!(NetworkBuilder::new("empty", 4).build().is_err());
    }

    #[test]
    fn wrong_input_length_rejected() {
        let net = NetworkBuilder::new("mlp", 4)
            .fully_connected(2, Activation::Identity)
            .build()
            .unwrap();
        assert!(matches!(
            net.forward_flat(&[0.0; 3]),
            Err(NnError::InputShape {
                expected: 4,
                actual: 3
            })
        ));
    }

    #[test]
    fn param_and_flop_accounting() {
        let net = NetworkBuilder::new("mlp", 10)
            .fully_connected(20, Activation::Relu)
            .fully_connected(5, Activation::Identity)
            .build()
            .unwrap();
        assert_eq!(net.param_count(), (10 * 20 + 20 + 20 * 5 + 5) as u64);
        assert_eq!(net.flops(), (2 * 10 * 20 + 2 * 20 * 5) as u64);
        assert_eq!(net.model_bytes(), net.param_count() * 4);
    }

    #[test]
    fn layer_kinds() {
        let net = NetworkBuilder::with_input_shape("cnn", Shape::d3(1, 4, 4))
            .conv2d(2, 3, 1, 1, Activation::Relu)
            .pool2d(2)
            .flatten()
            .fully_connected(2, Activation::Identity)
            .build()
            .unwrap();
        let kinds: Vec<LayerKind> = net.layers().iter().map(|(_, l)| l.kind()).collect();
        assert_eq!(
            kinds,
            vec![
                LayerKind::Conv,
                LayerKind::Pool,
                LayerKind::Reshape,
                LayerKind::Fc
            ]
        );
        assert!(net.layers()[0].1.has_weights());
        assert!(!net.layers()[1].1.has_weights());
    }

    #[test]
    fn group_max_reduces_groups() {
        let net = NetworkBuilder::new("maxout", 6)
            .group_max(3)
            .fully_connected(2, Activation::Identity)
            .build()
            .unwrap();
        assert_eq!(net.layer_input_shapes()[1].dims(), &[2]);
        // The group max itself: [1,5,2 | 4,0,-1] -> [5, 4].
        let t = Tensor::from_slice_1d(&[1.0, 5.0, 2.0, 4.0, 0.0, -1.0]).unwrap();
        let out = net.apply_layer(0, t).unwrap();
        assert_eq!(out.as_slice(), &[5.0, 4.0]);
        // Kind and accounting: weightless pool.
        assert_eq!(net.layers()[0].1.kind(), LayerKind::Pool);
        assert_eq!(net.layers()[0].1.param_count(), 0);
    }

    #[test]
    fn group_max_must_divide_volume() {
        let err = NetworkBuilder::new("maxout", 7)
            .group_max(3)
            .build()
            .unwrap_err();
        assert!(matches!(err, NnError::InvalidConfig { .. }));
    }

    #[test]
    fn layer_names_are_sequential() {
        let net = NetworkBuilder::new("mlp", 4)
            .fully_connected(4, Activation::Relu)
            .fully_connected(4, Activation::Relu)
            .build()
            .unwrap();
        assert_eq!(net.layers()[0].0, "fc1");
        assert_eq!(net.layers()[1].0, "fc2");
    }
}

//! Per-network summary statistics: parameters, FLOPs, bytes per layer.
//!
//! These feed the accelerator model's cost accounting and the experiment
//! reports (model sizes in Table I, memory footprints in Table III).

use crate::{LayerKind, Network};

/// Summary of one layer for reports.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerStats {
    /// Layer name within the network (e.g. `fc3`).
    pub name: String,
    /// Coarse layer kind.
    pub kind: LayerKind,
    /// Number of scalar inputs the layer reads per execution.
    pub inputs: usize,
    /// Number of scalar outputs the layer produces per execution.
    pub outputs: usize,
    /// Parameter count (weights + biases).
    pub params: u64,
    /// Multiply+add count of one from-scratch execution.
    pub flops: u64,
}

/// Summary of a whole network.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkStats {
    /// Network name.
    pub name: String,
    /// Per-layer breakdown.
    pub layers: Vec<LayerStats>,
    /// Total parameters.
    pub total_params: u64,
    /// Model size in bytes at 32-bit precision.
    pub total_bytes: u64,
    /// Total multiply+adds of one from-scratch execution.
    pub total_flops: u64,
}

/// Computes summary statistics for a network.
pub fn network_stats(net: &Network) -> NetworkStats {
    let mut layers = Vec::with_capacity(net.layers().len());
    for ((name, layer), in_shape) in net.layers().iter().zip(net.layer_input_shapes().iter()) {
        let out_shape = layer
            .output_shape(in_shape)
            .expect("shapes validated at build time");
        layers.push(LayerStats {
            name: name.clone(),
            kind: layer.kind(),
            inputs: in_shape.volume(),
            outputs: out_shape.volume(),
            params: layer.param_count(),
            flops: layer.flops(in_shape),
        });
    }
    NetworkStats {
        name: net.name().to_string(),
        total_params: net.param_count(),
        total_bytes: net.model_bytes(),
        total_flops: net.flops(),
        layers,
    }
}

impl NetworkStats {
    /// Renders a plain-text table, one row per layer.
    pub fn to_table(&self) -> String {
        let mut s = format!(
            "{}: {} params, {:.1} MB, {:.1} MFLOPs/exec\n",
            self.name,
            self.total_params,
            self.total_bytes as f64 / 1e6,
            self.total_flops as f64 / 1e6
        );
        s.push_str(&format!(
            "{:<12} {:<10} {:>10} {:>10} {:>12} {:>14}\n",
            "layer", "kind", "inputs", "outputs", "params", "flops"
        ));
        for l in &self.layers {
            s.push_str(&format!(
                "{:<12} {:<10} {:>10} {:>10} {:>12} {:>14}\n",
                l.name,
                format!("{:?}", l.kind),
                l.inputs,
                l.outputs,
                l.params,
                l.flops
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, NetworkBuilder};

    #[test]
    fn stats_match_network_accounting() {
        let net = NetworkBuilder::new("mlp", 8)
            .fully_connected(16, Activation::Relu)
            .fully_connected(4, Activation::Identity)
            .build()
            .unwrap();
        let stats = network_stats(&net);
        assert_eq!(stats.total_params, net.param_count());
        assert_eq!(stats.total_flops, net.flops());
        assert_eq!(stats.layers.len(), 2);
        assert_eq!(stats.layers[0].inputs, 8);
        assert_eq!(stats.layers[0].outputs, 16);
        assert_eq!(stats.layers[1].outputs, 4);
    }

    #[test]
    fn table_contains_layer_names() {
        let net = NetworkBuilder::new("mlp", 4)
            .fully_connected(2, Activation::Identity)
            .build()
            .unwrap();
        let table = network_stats(&net).to_table();
        assert!(table.contains("fc1"));
        assert!(table.contains("mlp"));
    }
}

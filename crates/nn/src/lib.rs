//! Forward-inference DNN substrate for the `reuse-dnn` reproduction.
//!
//! The paper evaluates three network families (Section II): MLPs built from
//! fully-connected layers, CNNs with 2D/3D convolutions, and RNNs built from
//! bidirectional LSTM layers. This crate provides forward-only
//! implementations of all of them:
//!
//! * [`FullyConnected`] — Eq. 1 of the paper, input-major weights.
//! * [`Conv2dLayer`] / [`Conv3dLayer`] — Eq. 2, direct convolution.
//! * [`Pool2dLayer`] / [`Pool3dLayer`] — max pooling.
//! * [`LstmCell`] / [`BiLstmLayer`] — Fig. 2/3 of the paper.
//! * [`Network`] / [`NetworkBuilder`] — a sequential container with shape
//!   inference, FLOP and parameter accounting.
//! * [`init`] — deterministic pseudo-random weight initialization, so every
//!   experiment in the workspace is reproducible bit-for-bit.
//!
//! # Example
//!
//! ```
//! use reuse_nn::{Activation, NetworkBuilder};
//!
//! let net = NetworkBuilder::new("tiny-mlp", 4)
//!     .fully_connected(8, Activation::Relu)
//!     .fully_connected(2, Activation::Identity)
//!     .build()?;
//! let out = net.forward_flat(&[0.5, -0.5, 0.25, 0.0])?;
//! assert_eq!(out.len(), 2);
//! # Ok::<(), reuse_nn::NnError>(())
//! ```

#![warn(missing_docs)]

mod activation;
pub mod conv_layers;
mod error;
pub mod fc;
pub mod init;
pub mod lstm;
mod network;
pub mod passthrough;
pub mod pool;
pub mod serialize;
pub mod stats;

pub use activation::Activation;
pub use conv_layers::{Conv2dLayer, Conv3dLayer};
pub use error::NnError;
pub use fc::FullyConnected;
pub use lstm::{BiLstmLayer, LstmCell, LstmState};
pub use network::{Layer, LayerKind, Network, NetworkBuilder};
pub use passthrough::{PassthroughLayer, PassthroughOp, PoolSpec2d};
pub use pool::{Pool2dLayer, Pool3dLayer};

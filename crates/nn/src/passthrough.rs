//! Recompute-always passthrough layers for ingested graphs.
//!
//! ONNX ingestion (`reuse-onnx-ingest`) lowers ops the reuse scheme cannot
//! correct incrementally — softmax, general rectangular pooling, standalone
//! element-wise activations — into a [`PassthroughLayer`]. A passthrough
//! executes its op from scratch on every frame. The reuse engine still gives
//! it a plan slot so its cost shows up honestly in metrics and telemetry
//! (full MACs charged, zero inputs reused), but it never participates in
//! quantizer calibration, cross-stream signature caching, or adaptive
//! policy decisions.
//!
//! Every op here is *executable*: a passthrough must still produce correct
//! outputs so partial graphs serve end-to-end. Ops that cannot be executed
//! at all (attention blocks, custom kernels) are ingestion errors, not
//! passthroughs.

use reuse_tensor::{Shape, Tensor};

use crate::{Activation, NnError};

/// Geometry of a general 2D pooling window over `[c, h, w]` inputs:
/// rectangular kernel, independent strides, symmetric zero padding and an
/// optional ceil output mode (the ONNX `MaxPool`/`AveragePool` surface,
/// minus dilation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolSpec2d {
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Vertical stride.
    pub stride_h: usize,
    /// Horizontal stride.
    pub stride_w: usize,
    /// Symmetric vertical padding (top == bottom).
    pub pad_h: usize,
    /// Symmetric horizontal padding (left == right).
    pub pad_w: usize,
    /// Emit a final partial window when the stride does not divide evenly.
    pub ceil: bool,
}

impl PoolSpec2d {
    /// Output extent of one spatial dimension, or 0 when the window does
    /// not fit.
    fn extent(&self, size: usize, k: usize, stride: usize, pad: usize) -> usize {
        let span = size + 2 * pad;
        if span < k || stride == 0 {
            return 0;
        }
        let d = span - k;
        if self.ceil && !d.is_multiple_of(stride) {
            d / stride + 2
        } else {
            d / stride + 1
        }
    }

    /// Output `(oh, ow)` for an `h x w` input plane, or `None` when the
    /// window does not fit.
    pub fn output_hw(&self, h: usize, w: usize) -> Option<(usize, usize)> {
        let oh = self.extent(h, self.kh, self.stride_h, self.pad_h);
        let ow = self.extent(w, self.kw, self.stride_w, self.pad_w);
        (oh > 0 && ow > 0).then_some((oh, ow))
    }
}

/// The op a [`PassthroughLayer`] recomputes every frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PassthroughOp {
    /// Numerically-stable softmax over the whole (flattened) input.
    Softmax,
    /// General 2D max pooling (padding contributes nothing to the max).
    MaxPool2d(PoolSpec2d),
    /// General 2D average pooling (padding excluded from the mean, the
    /// ONNX `count_include_pad = 0` default).
    AveragePool2d(PoolSpec2d),
    /// Per-channel global average over `[c, h, w]` inputs.
    GlobalAveragePool,
    /// A standalone element-wise activation with no preceding weighted
    /// layer to fuse into.
    Elementwise(Activation),
}

/// A weightless recompute-always layer (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PassthroughLayer {
    op: PassthroughOp,
}

impl PassthroughLayer {
    /// Wraps an op as a passthrough layer.
    pub fn new(op: PassthroughOp) -> Self {
        PassthroughLayer { op }
    }

    /// The wrapped op.
    pub fn op(&self) -> PassthroughOp {
        self.op
    }

    fn chw(input: &Shape) -> Result<(usize, usize, usize), NnError> {
        let d = input.dims();
        if d.len() != 3 {
            return Err(NnError::InvalidConfig {
                context: format!("passthrough pooling expects [c,h,w], got {input}"),
            });
        }
        Ok((d[0], d[1], d[2]))
    }

    /// Output shape for a given input shape.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] when the input shape is
    /// incompatible with the op (wrong rank, window does not fit).
    pub fn output_shape(&self, input: &Shape) -> Result<Shape, NnError> {
        match self.op {
            PassthroughOp::Softmax | PassthroughOp::Elementwise(_) => Ok(input.clone()),
            PassthroughOp::MaxPool2d(spec) | PassthroughOp::AveragePool2d(spec) => {
                let (c, h, w) = Self::chw(input)?;
                let (oh, ow) = spec.output_hw(h, w).ok_or_else(|| NnError::InvalidConfig {
                    context: format!("pool window does not fit {input}"),
                })?;
                Ok(Shape::d3(c, oh, ow))
            }
            PassthroughOp::GlobalAveragePool => {
                let (c, _, _) = Self::chw(input)?;
                Ok(Shape::d3(c, 1, 1))
            }
        }
    }

    /// MAC-equivalent cost of one from-scratch execution, in the same
    /// multiply+add units the weighted layers report. Pooling charges one
    /// unit per window element visited, softmax three per element,
    /// element-wise one per element — a deterministic cost model for the
    /// accelerator accounting, not a hardware measurement.
    pub fn flops(&self, input: &Shape) -> u64 {
        match self.op {
            PassthroughOp::Softmax => 6 * input.volume() as u64,
            PassthroughOp::Elementwise(_) => 2 * input.volume() as u64,
            PassthroughOp::MaxPool2d(spec) | PassthroughOp::AveragePool2d(spec) => {
                let Ok((c, h, w)) = Self::chw(input) else {
                    return 0;
                };
                let Some((oh, ow)) = spec.output_hw(h, w) else {
                    return 0;
                };
                2 * (c * oh * ow * spec.kh * spec.kw) as u64
            }
            PassthroughOp::GlobalAveragePool => 2 * input.volume() as u64,
        }
    }

    /// Runs the op on a flat input slice, writing the flat output into
    /// `out` (cleared first). Allocation-free apart from `out` growth, so
    /// the reuse engine's pooled buffers pass straight through.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShape`] when `input` does not match
    /// `in_shape` and [`NnError::InvalidConfig`] on op/shape mismatches.
    pub fn forward_into(
        &self,
        input: &[f32],
        in_shape: &Shape,
        out: &mut Vec<f32>,
    ) -> Result<(), NnError> {
        if input.len() != in_shape.volume() {
            return Err(NnError::InputShape {
                expected: in_shape.volume(),
                actual: input.len(),
            });
        }
        out.clear();
        match self.op {
            PassthroughOp::Softmax => {
                let max = input.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let mut sum = 0.0f32;
                for &v in input {
                    sum += (v - max).exp();
                }
                for &v in input {
                    out.push((v - max).exp() / sum);
                }
            }
            PassthroughOp::Elementwise(act) => {
                out.extend_from_slice(input);
                act.apply_in_place(out);
            }
            PassthroughOp::MaxPool2d(spec) => {
                self.pool2d(input, in_shape, out, spec, true)?;
            }
            PassthroughOp::AveragePool2d(spec) => {
                self.pool2d(input, in_shape, out, spec, false)?;
            }
            PassthroughOp::GlobalAveragePool => {
                let (c, h, w) = Self::chw(in_shape)?;
                let plane = h * w;
                for ch in 0..c {
                    let s: f32 = input[ch * plane..(ch + 1) * plane].iter().sum();
                    out.push(s / plane as f32);
                }
            }
        }
        Ok(())
    }

    fn pool2d(
        &self,
        input: &[f32],
        in_shape: &Shape,
        out: &mut Vec<f32>,
        spec: PoolSpec2d,
        max: bool,
    ) -> Result<(), NnError> {
        let (c, h, w) = Self::chw(in_shape)?;
        let (oh, ow) = spec.output_hw(h, w).ok_or_else(|| NnError::InvalidConfig {
            context: format!("pool window does not fit {in_shape}"),
        })?;
        for ch in 0..c {
            let plane = &input[ch * h * w..(ch + 1) * h * w];
            for oy in 0..oh {
                let y0 = (oy * spec.stride_h) as isize - spec.pad_h as isize;
                for ox in 0..ow {
                    let x0 = (ox * spec.stride_w) as isize - spec.pad_w as isize;
                    let mut acc = if max { f32::NEG_INFINITY } else { 0.0 };
                    let mut n = 0u32;
                    for ky in 0..spec.kh as isize {
                        let y = y0 + ky;
                        if y < 0 || y >= h as isize {
                            continue;
                        }
                        for kx in 0..spec.kw as isize {
                            let x = x0 + kx;
                            if x < 0 || x >= w as isize {
                                continue;
                            }
                            let v = plane[y as usize * w + x as usize];
                            if max {
                                acc = acc.max(v);
                            } else {
                                acc += v;
                            }
                            n += 1;
                        }
                    }
                    out.push(match (max, n) {
                        (_, 0) => 0.0,
                        (true, _) => acc,
                        (false, _) => acc / n as f32,
                    });
                }
            }
        }
        Ok(())
    }

    /// Runs the op through the tensor API.
    ///
    /// # Errors
    ///
    /// Same as [`Self::forward_into`].
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, NnError> {
        let out_shape = self.output_shape(input.shape())?;
        let mut out = Vec::with_capacity(out_shape.volume());
        self.forward_into(input.as_slice(), input.shape(), &mut out)?;
        Ok(Tensor::from_vec(out_shape, out)?)
    }

    /// Whitespace-separated descriptor tokens for the text serializer
    /// (inverse of [`Self::from_spec_tokens`]).
    pub fn spec_tokens(&self) -> String {
        match self.op {
            PassthroughOp::Softmax => "softmax".to_string(),
            PassthroughOp::Elementwise(act) => format!("elementwise {}", act.name()),
            PassthroughOp::GlobalAveragePool => "gap".to_string(),
            PassthroughOp::MaxPool2d(s) | PassthroughOp::AveragePool2d(s) => {
                let kind = if matches!(self.op, PassthroughOp::MaxPool2d(_)) {
                    "maxpool2d"
                } else {
                    "avgpool2d"
                };
                format!(
                    "{kind} {} {} {} {} {} {} {}",
                    s.kh, s.kw, s.stride_h, s.stride_w, s.pad_h, s.pad_w, s.ceil as u8
                )
            }
        }
    }

    /// Parses the descriptor emitted by [`Self::spec_tokens`].
    pub fn from_spec_tokens(tokens: &[&str]) -> Option<Self> {
        let op = match *tokens.first()? {
            "softmax" => PassthroughOp::Softmax,
            "gap" => PassthroughOp::GlobalAveragePool,
            "elementwise" => {
                let act = match *tokens.get(1)? {
                    "identity" => Activation::Identity,
                    "relu" => Activation::Relu,
                    "sigmoid" => Activation::Sigmoid,
                    "tanh" => Activation::Tanh,
                    _ => return None,
                };
                PassthroughOp::Elementwise(act)
            }
            kind @ ("maxpool2d" | "avgpool2d") => {
                if tokens.len() != 8 {
                    return None;
                }
                let p = |i: usize| tokens[i].parse::<usize>().ok();
                let spec = PoolSpec2d {
                    kh: p(1)?,
                    kw: p(2)?,
                    stride_h: p(3)?,
                    stride_w: p(4)?,
                    pad_h: p(5)?,
                    pad_w: p(6)?,
                    ceil: p(7)? == 1,
                };
                if kind == "maxpool2d" {
                    PassthroughOp::MaxPool2d(spec)
                } else {
                    PassthroughOp::AveragePool2d(spec)
                }
            }
            _ => return None,
        };
        Some(PassthroughLayer::new(op))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one_and_is_shift_stable() {
        let layer = PassthroughLayer::new(PassthroughOp::Softmax);
        let t = Tensor::from_slice_1d(&[1.0, 2.0, 3.0]).unwrap();
        let out = layer.forward(&t).unwrap();
        let sum: f32 = out.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        // Shifting all logits must not change the result (stability).
        let shifted = Tensor::from_slice_1d(&[1001.0, 1002.0, 1003.0]).unwrap();
        let out2 = layer.forward(&shifted).unwrap();
        for (a, b) in out.as_slice().iter().zip(out2.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn maxpool_matches_square_pool_semantics() {
        let spec = PoolSpec2d {
            kh: 2,
            kw: 2,
            stride_h: 2,
            stride_w: 2,
            pad_h: 0,
            pad_w: 0,
            ceil: false,
        };
        let layer = PassthroughLayer::new(PassthroughOp::MaxPool2d(spec));
        let t = Tensor::from_fn(Shape::d3(1, 4, 4), |i| i as f32);
        let out = layer.forward(&t).unwrap();
        assert_eq!(out.shape().dims(), &[1, 2, 2]);
        assert_eq!(out.as_slice(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn padded_maxpool_ignores_padding() {
        let spec = PoolSpec2d {
            kh: 3,
            kw: 3,
            stride_h: 2,
            stride_w: 2,
            pad_h: 1,
            pad_w: 1,
            ceil: false,
        };
        let layer = PassthroughLayer::new(PassthroughOp::MaxPool2d(spec));
        // All-negative input: zero padding must not leak into the max.
        let t = Tensor::from_fn(Shape::d3(1, 4, 4), |i| -1.0 - i as f32);
        let out = layer.forward(&t).unwrap();
        assert_eq!(out.shape().dims(), &[1, 2, 2]);
        assert!(out.as_slice().iter().all(|&v| v < 0.0));
    }

    #[test]
    fn average_pool_excludes_padding_from_the_mean() {
        let spec = PoolSpec2d {
            kh: 2,
            kw: 2,
            stride_h: 2,
            stride_w: 2,
            pad_h: 1,
            pad_w: 1,
            ceil: false,
        };
        let layer = PassthroughLayer::new(PassthroughOp::AveragePool2d(spec));
        let t = Tensor::from_fn(Shape::d3(1, 2, 2), |_| 8.0);
        let out = layer.forward(&t).unwrap();
        // Corner windows see exactly one real element; its mean is 8, not 2.
        assert!(out.as_slice().iter().all(|&v| (v - 8.0).abs() < 1e-6));
    }

    #[test]
    fn global_average_pool_reduces_each_channel() {
        let layer = PassthroughLayer::new(PassthroughOp::GlobalAveragePool);
        let t = Tensor::from_fn(Shape::d3(2, 2, 2), |i| i as f32);
        let out = layer.forward(&t).unwrap();
        assert_eq!(out.shape().dims(), &[2, 1, 1]);
        assert_eq!(out.as_slice(), &[1.5, 5.5]);
    }

    #[test]
    fn elementwise_relu_matches_activation() {
        let layer = PassthroughLayer::new(PassthroughOp::Elementwise(Activation::Relu));
        let t = Tensor::from_slice_1d(&[-1.0, 0.5]).unwrap();
        assert_eq!(layer.forward(&t).unwrap().as_slice(), &[0.0, 0.5]);
    }

    #[test]
    fn spec_tokens_round_trip() {
        let ops = [
            PassthroughOp::Softmax,
            PassthroughOp::GlobalAveragePool,
            PassthroughOp::Elementwise(Activation::Tanh),
            PassthroughOp::MaxPool2d(PoolSpec2d {
                kh: 3,
                kw: 2,
                stride_h: 2,
                stride_w: 1,
                pad_h: 1,
                pad_w: 0,
                ceil: true,
            }),
            PassthroughOp::AveragePool2d(PoolSpec2d {
                kh: 2,
                kw: 2,
                stride_h: 2,
                stride_w: 2,
                pad_h: 0,
                pad_w: 0,
                ceil: false,
            }),
        ];
        for op in ops {
            let layer = PassthroughLayer::new(op);
            let text = layer.spec_tokens();
            let tokens: Vec<&str> = text.split_whitespace().collect();
            let back = PassthroughLayer::from_spec_tokens(&tokens).unwrap();
            assert_eq!(back, layer, "round trip failed for {text:?}");
        }
    }

    #[test]
    fn flops_are_positive_and_shape_aware() {
        let layer = PassthroughLayer::new(PassthroughOp::Softmax);
        assert_eq!(layer.flops(&Shape::d1(10)), 60);
        let spec = PoolSpec2d {
            kh: 2,
            kw: 2,
            stride_h: 2,
            stride_w: 2,
            pad_h: 0,
            pad_w: 0,
            ceil: false,
        };
        let pool = PassthroughLayer::new(PassthroughOp::MaxPool2d(spec));
        assert_eq!(pool.flops(&Shape::d3(1, 4, 4)), 2 * 4 * 4);
    }
}

use reuse_tensor::Tensor;

/// Elementwise activation function applied after a layer's linear part.
///
/// The paper's networks use ReLU in hidden layers; the LSTM gates use
/// `Sigmoid` and `Tanh` (paper Fig. 3, `σ` and `φ`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Activation {
    /// No non-linearity (output layers, pre-softmax logits).
    #[default]
    Identity,
    /// `max(0, x)`.
    Relu,
    /// Logistic sigmoid `1 / (1 + e^-x)`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Applies the activation to a scalar.
    pub fn apply_scalar(&self, x: f32) -> f32 {
        match self {
            Activation::Identity => x,
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
        }
    }

    /// Applies the activation elementwise to a tensor, returning a new one.
    pub fn apply(&self, t: &Tensor) -> Tensor {
        match self {
            Activation::Identity => t.clone(),
            _ => reuse_tensor::ops::map(t, |v| self.apply_scalar(v)),
        }
    }

    /// Applies the activation elementwise in place — the allocation-free
    /// variant the engine's steady-state path uses. `Identity` touches
    /// nothing.
    pub fn apply_in_place(&self, values: &mut [f32]) {
        if matches!(self, Activation::Identity) {
            return;
        }
        for v in values.iter_mut() {
            *v = self.apply_scalar(*v);
        }
    }

    /// Short lowercase name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Activation::Identity => "identity",
            Activation::Relu => "relu",
            Activation::Sigmoid => "sigmoid",
            Activation::Tanh => "tanh",
        }
    }
}

impl std::fmt::Display for Activation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_passes_through() {
        assert_eq!(Activation::Identity.apply_scalar(-3.5), -3.5);
    }

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(Activation::Relu.apply_scalar(-1.0), 0.0);
        assert_eq!(Activation::Relu.apply_scalar(2.0), 2.0);
        assert_eq!(Activation::Relu.apply_scalar(0.0), 0.0);
    }

    #[test]
    fn sigmoid_range_and_midpoint() {
        let s = Activation::Sigmoid;
        assert!((s.apply_scalar(0.0) - 0.5).abs() < 1e-6);
        assert!(s.apply_scalar(10.0) > 0.999);
        assert!(s.apply_scalar(-10.0) < 0.001);
    }

    #[test]
    fn tanh_is_odd() {
        let t = Activation::Tanh;
        assert!((t.apply_scalar(1.0) + t.apply_scalar(-1.0)).abs() < 1e-6);
        assert_eq!(t.apply_scalar(0.0), 0.0);
    }

    #[test]
    fn apply_maps_tensor() {
        let t = Tensor::from_slice_1d(&[-1.0, 2.0]).unwrap();
        let out = Activation::Relu.apply(&t);
        assert_eq!(out.as_slice(), &[0.0, 2.0]);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Activation::Relu.to_string(), "relu");
        assert_eq!(Activation::default(), Activation::Identity);
    }
}

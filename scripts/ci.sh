#!/usr/bin/env bash
# Tier-1 CI gate: formatting, lints, full test suite.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test (workspace, detected SIMD level) =="
cargo test --workspace -q

echo "== cargo test (workspace, forced REUSE_SIMD=off) =="
# The scalar level carries the bit-identity contract against the naive
# oracles; running the full suite with the fast path disabled keeps that
# contract from rotting on AVX2 hosts (where default runs only exercise
# the tolerance-based assertions).
REUSE_SIMD=off cargo test --workspace -q

echo "== telemetry overhead smoke (budget ${REUSE_TELEMETRY_OVERHEAD_PCT:-5}%) =="
# Telemetry recording must stay in the noise of a steady-state frame; the
# bench binary exits nonzero when the on/off delta exceeds the budget.
cargo run --release -q -p reuse-bench --bin kernel_bench -- --telemetry-smoke

echo "== blocked-kernel perf smoke (level-aware speedup + GFLOP/s floors) =="
# Blocked matmul must beat the naive serial kernel and, under AVX2, sustain
# an absolute-throughput floor; floors auto-relax to scalar expectations
# when the host lacks AVX2/FMA. Tunable via REUSE_BLOCKED_MIN_SPEEDUP /
# REUSE_BLOCKED_MIN_GFLOPS for noisy hosts.
cargo run --release -q -p reuse-bench --bin kernel_bench -- --perf-smoke

echo "== BENCH_kernels.json schema check =="
# The stored artifact must carry the full provenance schema (thread
# resolution, SIMD level block, per-row parallel column or skip note).
cargo run --release -q -p reuse-bench --bin kernel_bench -- --validate BENCH_kernels.json

echo "== multi-session smoke (4 sessions, one compiled model) =="
# Interleaves four ReuseSessions over one shared CompiledModel and checks
# every stream bit-for-bit (outputs and metrics, so per-session hit rates
# match a single-session run exactly) against standalone engines; the CLI
# exits nonzero on any divergence.
REUSE_SCALE=tiny cargo run --release -q -p reuse-bench --bin reuse_cli -- run kaldi 40 --sessions 4
REUSE_SCALE=tiny cargo run --release -q -p reuse-bench --bin reuse_cli -- run eesen 20 --sessions 3

echo "== serving-runtime smoke (StreamServer vs standalone sessions) =="
# Serves N offset streams through one StreamServer and checks every output
# and per-stream metrics bit-for-bit against standalone ReuseSessions; the
# CLI exits 6 on serve/standalone divergence.
REUSE_SCALE=tiny cargo run --release -q -p reuse-bench --bin reuse_cli -- serve kaldi --streams 4 --frames 32 > /dev/null
REUSE_SCALE=tiny cargo run --release -q -p reuse-bench --bin reuse_cli -- serve eesen --streams 3 --frames 20 > /dev/null

echo "== cross-stream signature-cache smoke (capacity 0 + full capacity) =="
# Two passes: with the cache compiled in at capacity 0 the server must stay
# bit-identical to standalone sessions (exactly today's behavior), then a
# full-capacity pass checks completion and that the cache is actually
# consulted (lookups > 0). Exit 6 on either failure.
REUSE_SCALE=tiny cargo run --release -q -p reuse-bench --bin reuse_cli -- serve kaldi --streams 4 --frames 32 --sig-cache > /dev/null
REUSE_SCALE=tiny cargo run --release -q -p reuse-bench --bin reuse_cli -- serve eesen --streams 3 --frames 20 --sig-cache > /dev/null

echo "== reuse-policy smoke (tune round trip + bit-identity suite, both SIMD levels) =="
# The replay auto-tuner must emit a policy file that reparses and
# recompiles to the same per-layer operating points (exit 4 on round-trip
# mismatch, 5 on I/O failure), and the StaticPolicy bit-identity suite
# must hold with the SIMD fast path on and off.
REUSE_SCALE=tiny cargo run --release -q -p reuse-bench --bin reuse_cli -- tune kaldi --smoke --out target/tuned-kaldi-smoke.json > /dev/null
REUSE_SCALE=tiny REUSE_SIMD=off cargo run --release -q -p reuse-bench --bin reuse_cli -- tune kaldi --smoke --out target/tuned-kaldi-smoke.json > /dev/null
cargo test -q -p reuse-core --test policy
REUSE_SIMD=off cargo test -q -p reuse-core --test policy

echo "== serve-net loopback smoke (TCP round-trip vs standalone, both SIMD levels) =="
# Starts the sharded tier behind a real loopback TCP socket, drives streams
# through the in-tree binary-protocol client, and checks every response
# payload bit-for-bit against standalone ReuseSessions (exit 6 on
# divergence). Runs at both SIMD levels so the wire path inherits the
# scalar bit-identity contract.
REUSE_SCALE=tiny cargo run --release -q -p reuse-bench --bin reuse_cli -- serve-net kaldi --streams 4 --frames 32 --smoke > /dev/null
REUSE_SCALE=tiny REUSE_SIMD=off cargo run --release -q -p reuse-bench --bin reuse_cli -- serve-net kaldi --streams 4 --frames 32 --smoke > /dev/null

echo "== ONNX ingest smoke (fixture bit-identity + fallback serving, both SIMD levels) =="
# The checked-in Gemm+Relu fixture must lower to a network that executes
# bit-identically to its hand-built twin through the reuse engine, and a
# graph with an unsupported op must still serve via a recompute-always
# passthrough slot (full MACs charged, zero reuse recorded). Exit 4 on
# divergence, 3 on parse/lower failure.
cargo run --release -q -p reuse-bench --bin reuse_cli -- ingest --smoke > /dev/null
REUSE_SIMD=off cargo run --release -q -p reuse-bench --bin reuse_cli -- ingest --smoke > /dev/null
cargo run --release -q -p reuse-bench --bin reuse_cli -- ingest crates/onnx-ingest/testdata/gemm_relu.onnx 64 > /dev/null

echo "== serve throughput smoke (scaling floor ${REUSE_SERVE_MIN_SCALING:-0.9}x, fps floor ${REUSE_SERVE_MIN_FPS:-1.0}) =="
# Aggregate frames/sec must not drop as the server goes from 1 to 8 streams
# (the dispatch loop amortizes per-tick overhead); floors are tunable for
# noisy hosts via REUSE_SERVE_MIN_SCALING / REUSE_SERVE_MIN_FPS.
REUSE_SCALE=tiny cargo run --release -q -p reuse-bench --bin serve_bench -- --perf-smoke

echo "== sharded open-loop smoke (shard-scaling + p99 floors, both SIMD levels) =="
# Worker-driven ShardedServer: 64-stream throughput must clear the
# host-aware REUSE_SERVE_MIN_SHARD_SCALING floor (default min(2.5, 0.9 x
# hardware threads) — a 1-core host cannot scale, a many-core host must),
# and the open-loop p99 at half capacity must stay under
# REUSE_SERVE_MAX_P99_NS (default 50 ms).
REUSE_SCALE=tiny cargo run --release -q -p reuse-bench --bin serve_bench -- --open-loop --perf-smoke
REUSE_SCALE=tiny REUSE_SIMD=off cargo run --release -q -p reuse-bench --bin serve_bench -- --open-loop --perf-smoke

echo "== BENCH_serve.json schema check =="
# The stored serving artifact must carry the throughput rows and the
# signature-cache churn section (fps pair, speedup, cache counters).
cargo run --release -q -p reuse-bench --bin serve_bench -- --validate BENCH_serve.json

echo "== cargo doc (no-deps, -D warnings) =="
# The model/session split is documented API surface; broken intra-doc links
# or missing docs fail the build.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "== thread-clamp check (forced REUSE_THREADS=8) =="
# Adaptive dispatch must clamp worker counts to the hardware even when the
# environment demands more.
REUSE_THREADS=8 cargo test -q -p reuse-tensor clamp_holds_under_forced_reuse_threads

echo "CI OK"

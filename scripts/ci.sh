#!/usr/bin/env bash
# Tier-1 CI gate: formatting, lints, full test suite.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test (workspace) =="
cargo test --workspace -q

echo "== telemetry overhead smoke (budget ${REUSE_TELEMETRY_OVERHEAD_PCT:-5}%) =="
# Telemetry recording must stay in the noise of a steady-state frame; the
# bench binary exits nonzero when the on/off delta exceeds the budget.
cargo run --release -q -p reuse-bench --bin kernel_bench -- --telemetry-smoke

echo "CI OK"

//! Cross-crate integration tests: workloads → reuse engine → accelerator
//! simulator, exercised through the public `reuse_dnn` façade.

use reuse_dnn::accel::{self, AcceleratorConfig, Simulator};
use reuse_dnn::prelude::*;
use reuse_dnn::reuse::{ReuseConfig, ReuseEngine};
use reuse_dnn::workloads::Scale;

fn run_workload(kind: WorkloadKind, executions: usize) -> (ReuseEngine, Vec<Vec<f32>>) {
    let w = Workload::build(kind, Scale::Tiny);
    let config = w.reuse_config().clone().record_trace(true);
    let mut engine = ReuseEngine::from_network(w.network(), &config);
    let frames = w.generate_frames(executions, 5);
    for f in &frames {
        engine.execute(f).expect("tiny workloads execute");
    }
    (engine, frames)
}

#[test]
fn kaldi_pipeline_reuses_and_stays_accurate() {
    let (engine, frames) = run_workload(WorkloadKind::Kaldi, 20);
    let m = engine.metrics();
    assert!(
        m.overall_computation_reuse() > 0.2,
        "reuse {}",
        m.overall_computation_reuse()
    );
    // Output fidelity versus the fp32 network on the last frame.
    let w = Workload::build(WorkloadKind::Kaldi, Scale::Tiny);
    let reference = w.network().forward_flat(frames.last().unwrap()).unwrap();
    let out = engine.reference_forward(frames.last().unwrap()).unwrap();
    assert_eq!(out.len(), reference.len());
}

#[test]
fn autopilot_pipeline_simulates_faster_with_reuse() {
    let (mut engine, _) = run_workload(WorkloadKind::AutoPilot, 16);
    let traces = engine.take_traces();
    let sim = Simulator::new(AcceleratorConfig::paper());
    let input = accel::SimInput {
        name: "autopilot-tiny",
        traces: &traces,
        model_bytes: engine.network().model_bytes(),
        executions_per_sequence: 100,
        activations_spill: true,
    };
    let base = sim.simulate_baseline(&input);
    let reuse = sim.simulate_reuse(&input);
    assert!(
        reuse.speedup_over(&base) > 1.5,
        "speedup {}",
        reuse.speedup_over(&base)
    );
    assert!(reuse.energy_j() < base.energy_j());
}

#[test]
fn eesen_sequences_flow_through_engine() {
    let w = Workload::build(WorkloadKind::Eesen, Scale::Tiny);
    let mut engine = ReuseEngine::from_network(w.network(), w.reuse_config());
    let seqs = w.generate_sequences(3, 12, 9);
    for seq in &seqs {
        let outs = engine.execute_sequence(seq).expect("sequences run");
        assert_eq!(outs.len(), 12);
    }
    assert!(engine.is_calibrated());
    let m = engine.metrics();
    assert!(m.layer("bilstm1").unwrap().reuse_executions > 0);
}

#[test]
fn prelude_quickstart_compiles_and_runs() {
    let network = NetworkBuilder::new("demo", 8)
        .fully_connected(16, reuse_dnn::nn::Activation::Relu)
        .fully_connected(4, reuse_dnn::nn::Activation::Identity)
        .build()
        .unwrap();
    let mut engine = ReuseEngine::from_network(&network, &ReuseConfig::uniform(16));
    let frame = vec![0.1f32; 8];
    engine.execute(&frame).unwrap(); // calibration (fp32)
    let a = engine.execute(&frame).unwrap(); // quantized from scratch
    let b = engine.execute(&frame).unwrap(); // incremental: zero changes
    assert_eq!(a.as_slice(), b.as_slice());
    assert!(engine.metrics().overall_input_similarity() > 0.99);
}

#[test]
fn quantizer_and_tensor_reexports_work() {
    let q = LinearQuantizer::new(reuse_dnn::quant::InputRange::new(-1.0, 1.0), 16).unwrap();
    assert_eq!(q.clusters(), 16);
    let t = Tensor::zeros(Shape::d2(2, 2));
    assert_eq!(t.len(), 4);
}

#[test]
fn c3d_tiny_clip_classifies_consistently() {
    let (mut engine, frames) = run_workload(WorkloadKind::C3d, 6);
    // Re-execute the last window: quantized state unchanged => identical
    // output.
    let out1 = engine.execute(frames.last().unwrap()).unwrap();
    let out2 = engine.execute(frames.last().unwrap()).unwrap();
    assert_eq!(out1.as_slice(), out2.as_slice());
}

#[test]
fn storage_reports_cover_all_workloads() {
    for kind in WorkloadKind::ALL {
        let w = Workload::build(kind, Scale::Tiny);
        let config = w.reuse_config();
        let r = accel::memory::storage_report(w.network(), |n| config.setting_for(n).enabled);
        assert!(r.io_reuse_bytes >= r.io_baseline_bytes, "{kind}");
        assert!(r.main_reuse_bytes >= r.main_baseline_bytes, "{kind}");
    }
}

#[test]
fn workload_models_round_trip_through_serialization() {
    use reuse_dnn::nn::serialize;
    for kind in WorkloadKind::ALL {
        let w = Workload::build(kind, Scale::Tiny);
        let text = serialize::to_string(w.network());
        let back = serialize::from_str(&text).unwrap_or_else(|e| panic!("{kind}: {e}"));
        assert_eq!(back.param_count(), w.network().param_count(), "{kind}");
        assert_eq!(back.input_shape(), w.network().input_shape(), "{kind}");
        // Spot-check behaviour on one input.
        if !w.is_recurrent() {
            let frame = w.generate_frames(1, 1).pop().unwrap();
            assert_eq!(
                back.forward_flat(&frame).unwrap().as_slice(),
                w.network().forward_flat(&frame).unwrap().as_slice(),
                "{kind}"
            );
        }
    }
}

#[test]
fn engine_summary_renders_for_real_workload() {
    let w = Workload::build(WorkloadKind::Kaldi, Scale::Tiny);
    let mut engine = reuse_dnn::reuse::ReuseEngine::from_network(w.network(), w.reuse_config());
    for frame in w.generate_frames(6, 2) {
        engine.execute(&frame).unwrap();
    }
    let report = reuse_dnn::reuse::summary::render(&engine);
    assert!(report.contains("kaldi"));
    assert!(report.contains("fc3"));
    assert!(report.contains("OVERALL"));
}

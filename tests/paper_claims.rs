//! Qualitative claims from the paper, asserted end-to-end at test scale.
//!
//! These are the statements the reproduction must preserve regardless of
//! absolute numbers (see DESIGN.md §7, "fidelity targets"). Networks run at
//! tiny scale so the suite stays fast in debug builds; the bench binaries
//! check the same claims at full scale.

use reuse_dnn::accel::{AcceleratorConfig, SimInput, Simulator};
use reuse_dnn::prelude::*;
use reuse_dnn::reuse::ReuseEngine;
use reuse_dnn::workloads::Scale;

fn simulate(kind: WorkloadKind, executions: usize) -> (f64, f64, f64) {
    let w = Workload::build(kind, Scale::Tiny);
    let config = w.reuse_config().clone().record_trace(true);
    let mut engine = ReuseEngine::from_network(w.network(), &config);
    if w.is_recurrent() {
        for seq in w.generate_sequences(3, executions.div_ceil(2), 42) {
            engine.execute_sequence(&seq).expect("sequences run");
        }
    } else {
        for frame in w.generate_frames(executions, 42) {
            engine.execute(&frame).expect("frames run");
        }
    }
    let reuse_fraction = engine.metrics().overall_computation_reuse();
    let traces = engine.take_traces();
    let sim = Simulator::new(AcceleratorConfig::paper());
    let input = SimInput {
        name: "claim",
        traces: &traces,
        model_bytes: w.network().model_bytes(),
        executions_per_sequence: w.executions_per_sequence(),
        activations_spill: w.activations_spill(),
    };
    let base = sim.simulate_baseline(&input);
    let with_reuse = sim.simulate_reuse(&input);
    (
        reuse_fraction,
        with_reuse.speedup_over(&base),
        1.0 - with_reuse.normalized_energy_to(&base),
    )
}

/// Section III: "more than 50% of the computations can be reused across DNN
/// executions in all the DNNs" — relaxed to >30% at tiny scale, where the
/// shrunken hidden layers quantize more coarsely.
#[test]
fn claim_substantial_reuse_on_every_dnn() {
    for kind in WorkloadKind::ALL {
        let (reuse, _, _) = simulate(kind, 24);
        assert!(reuse > 0.30, "{kind}: reuse {reuse}");
    }
}

/// Section VI: "our technique provides consistent speedups for the four
/// DNNs" — every workload must beat the baseline accelerator.
#[test]
fn claim_consistent_speedups() {
    for kind in WorkloadKind::ALL {
        let (_, speedup, savings) = simulate(kind, 24);
        // Tiny-scale Kaldi is Amdahl-capped: its reuse-disabled FC1/FC2
        // keep their full-scale 360-wide input while the reuse-enabled
        // layers shrink, so almost all work is non-reusable. The full-scale
        // run (EXPERIMENTS.md) shows 2.4x; here we only require "never
        // slower".
        let (min_speedup, min_savings) = match kind {
            WorkloadKind::Kaldi => (1.0, 0.0),
            // Tiny EESEN runs 12-step sequences, so the per-sequence
            // from-scratch timestep is a twelfth of the whole run.
            WorkloadKind::Eesen => (1.1, 0.05),
            _ => (1.2, 0.15),
        };
        assert!(speedup >= min_speedup, "{kind}: speedup {speedup}");
        assert!(savings >= min_savings, "{kind}: savings {savings}");
    }
}

/// Section I: "the subtraction of the two inputs can be reused for all the
/// neurons in the same layer" — the comparison cost is per input, not per
/// connection, so a layer with many outputs amortizes it. Verified through
/// the trace accounting: quantize/compare ops equal input counts.
#[test]
fn claim_comparison_cost_is_per_input() {
    let w = Workload::build(WorkloadKind::Kaldi, Scale::Tiny);
    let config = w.reuse_config().clone().record_trace(true);
    let mut engine = ReuseEngine::from_network(w.network(), &config);
    for frame in w.generate_frames(6, 1) {
        engine.execute(&frame).expect("frames run");
    }
    let traces = engine.take_traces();
    let last = traces.last().expect("traces recorded");
    for layer in &last.layers {
        // Incremental layers performed at most n_changed × fan-out MACs;
        // the per-input bookkeeping never multiplies by the output count.
        assert!(layer.n_changed <= layer.n_inputs, "{}", layer.name);
        if layer.n_outputs > 0 && layer.macs_total > 0 {
            let fanout = layer.macs_total / layer.n_inputs.max(1);
            assert!(
                layer.macs_performed <= layer.n_changed * fanout.max(1) + layer.n_inputs,
                "{}: performed {} for {} changed",
                layer.name,
                layer.macs_performed,
                layer.n_changed
            );
        }
    }
}

/// Section IV-D: recurrent layers compare each input once for all four
/// gates, so an unchanged input saves 4× the work a single-gate FC layer
/// would save.
#[test]
fn claim_lstm_gates_share_comparisons() {
    use reuse_dnn::nn::init::Rng64;
    use reuse_dnn::nn::LstmCell;
    use reuse_dnn::quant::{InputRange, LinearQuantizer};
    use reuse_dnn::reuse::lstm::LstmReuseState;

    let cell = LstmCell::random(6, 4, &mut Rng64::new(9));
    let q = LinearQuantizer::new(InputRange::new(-1.0, 1.0), 16).unwrap();
    let mut state = LstmReuseState::new(&cell);
    let x = [0.2f32, -0.3, 0.1, 0.4, 0.0, -0.2];
    state.step(&cell, &q, &q, &x).unwrap();
    // Converge h, then flip exactly one input by several steps.
    for _ in 0..40 {
        state.step(&cell, &q, &q, &x).unwrap();
    }
    let mut x2 = x;
    x2[3] += 4.5 * q.step();
    let (_, stats) = state.step(&cell, &q, &q, &x2).unwrap();
    // The flipped x input changed (plus possibly an h value nudged across a
    // cluster boundary by the perturbation); every changed input is
    // corrected in all four gates at once — 4 × cell_dim MACs each, never
    // per-gate comparisons.
    assert!(stats.n_changed >= 1);
    assert_eq!(stats.macs_performed, stats.n_changed * 4 * 4);
}

/// Section VI: "the overheads are minimal compared to the savings" — the
/// reuse accelerator's worst case (zero similarity) costs within a few
/// percent of the baseline.
#[test]
fn claim_overheads_are_minimal() {
    use reuse_dnn::nn::init::Rng64;
    use reuse_dnn::reuse::ReuseConfig;

    let w = Workload::build(WorkloadKind::Kaldi, Scale::Tiny);
    let config = ReuseConfig::uniform(1 << 14)
        .disable_layer("fc1")
        .disable_layer("fc2")
        .record_trace(true);
    let mut engine = ReuseEngine::from_network(w.network(), &config);
    let mut rng = Rng64::new(5);
    let dim = w.network().input_shape().volume();
    for _ in 0..12 {
        let frame: Vec<f32> = (0..dim).map(|_| rng.uniform(1.0)).collect();
        engine.execute(&frame).expect("frames run");
    }
    let traces = engine.take_traces();
    let sim = Simulator::new(AcceleratorConfig::paper());
    let input = SimInput {
        name: "worst",
        traces: &traces[2..],
        model_bytes: w.network().model_bytes(),
        executions_per_sequence: 500,
        activations_spill: false,
    };
    let base = sim.simulate_baseline(&input);
    let with_reuse = sim.simulate_reuse(&input);
    let penalty = with_reuse.energy_j() / base.energy_j();
    assert!(penalty < 1.06, "worst-case energy penalty {penalty}");
}

/// Section VI / Table III: the reuse scheme's extra on-chip storage is a
/// small fraction of the baseline accelerator's I/O buffer, and the area
/// overhead is below 1%.
#[test]
fn claim_storage_and_area_overheads_small() {
    let config = AcceleratorConfig::paper();
    for kind in WorkloadKind::ALL {
        let w = Workload::build(kind, Scale::Tiny);
        let rc = w.reuse_config();
        let report =
            reuse_dnn::accel::memory::storage_report(w.network(), |n| rc.setting_for(n).enabled);
        // The extra state must fit the paper's reuse I/O buffer budget.
        assert!(
            report.io_reuse_bytes <= config.io_buffer_reuse_bytes,
            "{kind}: {} bytes",
            report.io_reuse_bytes
        );
    }
    let base = reuse_dnn::accel::area::baseline_area(&config).total();
    let with_reuse = reuse_dnn::accel::area::reuse_area(&config).total();
    assert!((with_reuse - base) / base < 0.01);
}

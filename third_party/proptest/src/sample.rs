//! Sampling strategies (subset of `proptest::sample`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy that picks uniformly from a fixed set of options.
#[derive(Debug, Clone)]
pub struct Select<T> {
    options: Vec<T>,
}

/// Builds a [`Select`] over `options` (must be non-empty).
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[(rng.next_u64() as usize) % self.options.len()].clone()
    }
}

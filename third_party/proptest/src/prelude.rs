//! Common imports, mirroring `proptest::prelude`.

pub use crate::strategy::Strategy;
pub use crate::test_runner::{ProptestConfig, TestCaseError};
pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};

//! The `Strategy` trait and the primitive strategies (ranges, tuples, map).

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value` from a [`TestRng`].
///
/// Upstream proptest strategies produce shrinkable value *trees*; this
/// stand-in generates plain values — deterministic per test, no shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (upstream `prop_map`).
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy adaptor returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty range strategy");
                let span = (e as i128 - s as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (s as i128 + v as i128) as $t
            }
        }
    )+};
}
int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end as f64 - self.start as f64;
                let v = (self.start as f64 + rng.next_f64() * span) as $t;
                if v >= self.end { self.start } else { v }
            }
        }
    )+};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($( ( $($s:ident . $idx:tt),+ ) )+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
}

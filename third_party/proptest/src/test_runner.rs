//! Deterministic per-test case driver.

use crate::strategy::Strategy;

/// Per-test configuration (subset of upstream's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each test must pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Default configuration with a custom case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the whole test fails.
    Fail(String),
    /// A `prop_assume!` precondition did not hold; the case is discarded.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
        }
    }
}

/// Deterministic value source for strategies: SplitMix64 keyed by test name,
/// so a failing case reproduces exactly on the next run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives the generator from a test name (FNV-1a of the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Drives one property test: draws cases from `strategy` until `config.cases`
/// of them are accepted, panicking on the first failure. Rejections
/// (`prop_assume!`) draw a replacement case, with a cap so a never-satisfied
/// assumption cannot loop forever.
pub fn run<S, F>(name: &str, config: &ProptestConfig, strategy: &S, mut body: F)
where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::from_name(name);
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    while accepted < config.cases {
        let value = strategy.generate(&mut rng);
        match body(value) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(cond)) => {
                rejected += 1;
                assert!(
                    rejected < config.cases.saturating_mul(64).saturating_add(1024),
                    "proptest '{name}': too many cases rejected by prop_assume!({cond})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed at accepted case {accepted}: {msg}")
            }
        }
    }
}

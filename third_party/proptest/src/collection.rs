//! Collection strategies (subset of `proptest::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive bounds on a generated collection's length.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s of values drawn from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Builds a [`VecStrategy`] with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.hi - self.size.lo + 1;
        let len = self.size.lo + (rng.next_u64() as usize) % span;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

//! Minimal offline stand-in for the `proptest` crate.
//!
//! The build environment pins an offline registry, so the workspace vendors
//! just the surface its property tests use: range / tuple / vec / select
//! strategies, `prop_map`, the `proptest!` macro with an optional
//! `#![proptest_config(...)]` header, and the `prop_assert*` / `prop_assume!`
//! macros.
//!
//! Unlike upstream proptest there is no shrinking and no persisted failure
//! seeds: every test draws a deterministic stream derived from its own name,
//! so a failure reproduces exactly on re-run, and the failing case index is
//! printed in the panic message.

#![warn(missing_docs)]

pub mod collection;
pub mod prelude;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (rather than panicking directly) so the runner can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        // Bind first so float comparisons don't trip
        // clippy::neg_cmp_op_on_partial_ord at every call site.
        let __prop_assert_cond: bool = $cond;
        if !__prop_assert_cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        $crate::prop_assert!(
            __left == __right,
            "assertion failed: `{:?}` != `{:?}`",
            __left,
            __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __left = $left;
        let __right = $right;
        $crate::prop_assert!(__left == __right, $($fmt)+);
    }};
}

/// Discards the current case (drawing a fresh one) when a precondition the
/// generator cannot express does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($config:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            #[allow(unreachable_code)]
            fn $name() {
                let __config = $config;
                let __strategy = ( $($strat,)+ );
                $crate::test_runner::run(stringify!($name), &__config, &__strategy, |__value| {
                    let ( $($arg,)+ ) = __value;
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_generate_within_bounds() {
        let mut rng = TestRng::from_name("ranges_generate_within_bounds");
        for _ in 0..1000 {
            let v = (1usize..5).generate(&mut rng);
            assert!((1..5).contains(&v));
            let w = (-8i32..=8).generate(&mut rng);
            assert!((-8..=8).contains(&w));
            let f = (-1.0f32..1.0).generate(&mut rng);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_size_bounds() {
        let mut rng = TestRng::from_name("vec_strategy_respects_size_bounds");
        let strat = crate::collection::vec(0.0f32..1.0, 2..100);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..100).contains(&v.len()));
        }
        let fixed = crate::collection::vec(0.0f32..1.0, 7);
        assert_eq!(fixed.generate(&mut rng).len(), 7);
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let mut rng = TestRng::from_name("prop_map_and_tuples_compose");
        let strat = (0u64..10, (-100i32..=100).prop_map(|v| v as f32 / 10.0));
        let (a, b) = strat.generate(&mut rng);
        assert!(a < 10);
        assert!((-10.0..=10.0).contains(&b));
    }

    #[test]
    fn select_draws_from_options() {
        let mut rng = TestRng::from_name("select_draws_from_options");
        let strat = crate::sample::select(vec![3, 5, 9]);
        for _ in 0..50 {
            assert!([3, 5, 9].contains(&strat.generate(&mut rng)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(x in -1.0f32..1.0, n in 1usize..4, v in crate::collection::vec(0i32..5, 1..=3)) {
            prop_assume!(n > 0);
            prop_assert!(x.abs() < 1.0);
            prop_assert_eq!(v.len().min(3), v.len());
            if n == 99 {
                return Ok(());
            }
            prop_assert!(n < 4, "n was {}", n);
        }
    }
}

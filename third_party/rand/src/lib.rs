//! Minimal offline stand-in for the `rand` crate.
//!
//! The build environment pins an offline registry, so the workspace vendors
//! just the API surface this repository uses: a seedable deterministic
//! generator (`rngs::StdRng`) plus `Rng::gen_range` over numeric ranges.
//!
//! The stream is **not** the upstream `rand 0.8` StdRng stream; only the
//! repository's own guarantee (same seed → same stream, forever) holds.

#![warn(missing_docs)]

pub mod rngs;

/// A source of pseudo-random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Typed sampling helpers layered over [`RngCore`] (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Construction from a 64-bit seed (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that know how to draw one uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one sample from `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! float_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 random bits → unit in [0, 1); affine map into the range.
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let span = self.end as f64 - self.start as f64;
                let v = (self.start as f64 + unit * span) as $t;
                // f64→float rounding can land exactly on `end`; fold it back.
                if v >= self.end { self.start } else { v }
            }
        }
    )+};
}
float_sample_range!(f32, f64);

macro_rules! int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample empty range");
                let span = (e as i128 - s as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (s as i128 + v as i128) as $t
            }
        }
    )+};
}
int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(-1.0f32..1.0).to_bits(),
                b.gen_range(-1.0f32..1.0).to_bits()
            );
        }
    }

    #[test]
    fn float_samples_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&v), "{v} out of range");
        }
    }

    #[test]
    fn int_samples_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&v));
            let u = rng.gen_range(0usize..17);
            assert!(u < 17);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<f32> = (0..8).map(|_| a.gen_range(0.0f32..1.0)).collect();
        let vb: Vec<f32> = (0..8).map(|_| b.gen_range(0.0f32..1.0)).collect();
        assert_ne!(va, vb);
    }
}

//! Named generator types (subset of `rand::rngs`).

use crate::{RngCore, SeedableRng};

/// Deterministic 64-bit generator: xorshift64* seeded through SplitMix64.
///
/// Not the upstream StdRng stream — see the crate docs.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 scramble so nearby seeds diverge immediately; force the
        // state non-zero because xorshift has a zero fixed point.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        StdRng {
            state: (z ^ (z >> 31)) | 1,
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

//! Minimal offline stand-in for the `criterion` crate.
//!
//! The build environment pins an offline registry, so the workspace vendors
//! just the surface its benches use: `criterion_group!` / `criterion_main!`,
//! `Criterion::{bench_function, benchmark_group}`, `BenchmarkGroup`
//! (`sample_size`, `bench_function`, `bench_with_input`, `finish`),
//! `BenchmarkId::new` and `Bencher::iter`.
//!
//! Measurement is a plain wall-clock loop: warm up briefly, then run batches
//! until a target duration elapses and report mean ns/iter on stdout. No
//! statistics, plots, or baseline comparisons.

#![warn(missing_docs)]

use std::time::Instant;

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    warmup_ms: u64,
    measure_ms: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // Modest windows keep `cargo bench` tractable in constrained CI.
        Criterion {
            warmup_ms: 30,
            measure_ms: 250,
        }
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter label, `"name/param"`.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    warmup_ms: u64,
    measure_ms: u64,
    ns_per_iter: f64,
}

impl Bencher {
    /// Measures `f`, recording mean wall-clock ns per iteration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let warmup = Instant::now();
        loop {
            black_box(f());
            if warmup.elapsed().as_millis() as u64 >= self.warmup_ms {
                break;
            }
        }
        let start = Instant::now();
        let mut iters = 0u64;
        let mut batch = 1u64;
        loop {
            for _ in 0..batch {
                black_box(f());
            }
            iters += batch;
            let elapsed = start.elapsed();
            if elapsed.as_millis() as u64 >= self.measure_ms {
                self.ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
                return;
            }
            batch = batch.saturating_mul(2).min(1 << 20);
        }
    }
}

fn run_bench(warmup_ms: u64, measure_ms: u64, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        warmup_ms,
        measure_ms,
        ns_per_iter: 0.0,
    };
    f(&mut b);
    println!("bench {id:<50} {:>14.1} ns/iter", b.ns_per_iter);
}

impl Criterion {
    /// Runs a single free-standing benchmark.
    pub fn bench_function<I: Into<BenchmarkId>>(
        &mut self,
        id: I,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench(self.warmup_ms, self.measure_ms, &id.into().id, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of benchmarks sharing a prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in has no sampling plan.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I: Into<BenchmarkId>>(
        &mut self,
        id: I,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into().id);
        run_bench(
            self.criterion.warmup_ms,
            self.criterion.measure_ms,
            &id,
            &mut f,
        );
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<T, I: Into<BenchmarkId>>(
        &mut self,
        id: I,
        input: &T,
        mut f: impl FnMut(&mut Bencher, &T),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` for a bench binary built from [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            warmup_ms: 1,
            measure_ms: 5,
            ns_per_iter: 0.0,
        };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(1);
            acc
        });
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion {
            warmup_ms: 1,
            measure_ms: 2,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("f", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("p", 3), &3usize, |b, &n| b.iter(|| n * 2));
        group.finish();
        c.bench_function("top", |b| b.iter(|| 2 + 2));
    }
}

//! Real-time streaming latency: speech frames arrive every 10 ms (paper
//! Fig. 1); does the accelerator keep up, and how much headroom does the
//! reuse scheme add?
//!
//! Run with: `cargo run --release --example streaming_latency`

use reuse_dnn::accel::{AcceleratorConfig, SimInput, Simulator};
use reuse_dnn::prelude::*;
use reuse_dnn::reuse;

/// The speech frame period (paper: 10 ms frames).
const FRAME_BUDGET_S: f64 = 0.010;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = reuse_dnn::workloads::Scale::from_env();
    let workload = Workload::build(WorkloadKind::Kaldi, scale);
    println!("Kaldi acoustic scoring at {scale} scale; one DNN execution per 10 ms frame\n");

    let config = workload.reuse_config().clone().record_trace(true);
    let mut engine = reuse::ReuseEngine::from_network(workload.network(), &config);
    let frames = workload.generate_frames(60, 9);
    for frame in &frames {
        engine.execute(frame)?;
    }
    let traces = engine.take_traces();
    let sim = Simulator::new(AcceleratorConfig::paper());

    // Per-frame latency: simulate each execution's trace in isolation.
    println!(
        "{:>7} {:>14} {:>14} {:>12}",
        "frame", "baseline", "with reuse", "budget used"
    );
    let mut worst_reuse = 0.0f64;
    let mut worst_base = 0.0f64;
    for (t, trace) in traces.iter().enumerate() {
        let one = std::slice::from_ref(trace);
        let input = SimInput {
            name: "kaldi-frame",
            traces: one,
            model_bytes: workload.network().model_bytes(),
            executions_per_sequence: workload.executions_per_sequence(),
            activations_spill: false,
        };
        let base = sim.simulate_baseline(&input).seconds;
        let with_reuse = sim.simulate_reuse(&input).seconds;
        worst_base = worst_base.max(base);
        worst_reuse = worst_reuse.max(with_reuse);
        if t % 15 == 0 {
            println!(
                "{:>7} {:>11.2} us {:>11.2} us {:>11.1}%",
                t,
                base * 1e6,
                with_reuse * 1e6,
                with_reuse / FRAME_BUDGET_S * 100.0
            );
        }
    }
    println!();
    println!(
        "worst-case frame latency: baseline {:.2} us, reuse {:.2} us (budget {:.0} us)",
        worst_base * 1e6,
        worst_reuse * 1e6,
        FRAME_BUDGET_S * 1e6
    );
    let headroom = FRAME_BUDGET_S / worst_reuse;
    println!(
        "the reuse accelerator meets the 10 ms real-time budget with {headroom:.0}x headroom —\n\
         slack it can spend power-gated (the paper's idle-period energy story)"
    );
    assert!(worst_reuse < FRAME_BUDGET_S, "real-time budget violated");
    Ok(())
}

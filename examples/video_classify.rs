//! Video action classification with the C3D CNN (paper Table I) plus a
//! full accelerator simulation of the clip.
//!
//! Run with: `cargo run --release --example video_classify`
//! (defaults to the reduced `small` scale; `REUSE_SCALE=full` runs the
//! exact Table I geometry and takes several minutes)

use reuse_dnn::prelude::*;
use reuse_dnn::{accel, reuse};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = reuse_dnn::workloads::Scale::from_env();
    let workload = Workload::build(WorkloadKind::C3d, scale);
    println!(
        "C3D action classifier at {scale} scale: input {}, {} classes",
        workload.network().input_shape(),
        workload.network().output_shape().volume()
    );

    // A short clip: 8 disjoint 16-frame windows.
    let windows = workload.generate_frames(8, 3);
    let config = workload.reuse_config().clone().record_trace(true);
    let mut engine = reuse::ReuseEngine::from_network(workload.network(), &config);

    for (t, window) in windows.iter().enumerate() {
        let out = engine.execute(window)?;
        println!("window {t}: action class {}", out.argmax());
    }

    let m = engine.metrics();
    println!();
    println!(
        "input similarity  : {:.1}%",
        m.overall_input_similarity() * 100.0
    );
    println!(
        "computation reuse : {:.1}%",
        m.overall_computation_reuse() * 100.0
    );

    // Simulate the clip on the Table II accelerator.
    let traces = engine.take_traces();
    let sim = Simulator::new(AcceleratorConfig::paper());
    let input = accel::SimInput {
        name: "c3d-clip",
        traces: &traces,
        model_bytes: workload.network().model_bytes(),
        executions_per_sequence: workload.executions_per_sequence(),
        activations_spill: workload.activations_spill(),
    };
    let base = sim.simulate_baseline(&input);
    let with_reuse = sim.simulate_reuse(&input);
    println!(
        "accelerator       : {:.2}x speedup, {:.0}% energy savings over the clip",
        with_reuse.speedup_over(&base),
        (1.0 - with_reuse.normalized_energy_to(&base)) * 100.0
    );
    println!(
        "                    baseline {:.2} ms / {:.2} mJ -> reuse {:.2} ms / {:.2} mJ",
        base.seconds * 1e3,
        base.energy_j() * 1e3,
        with_reuse.seconds * 1e3,
        with_reuse.energy_j() * 1e3
    );
    Ok(())
}

//! Acoustic scoring over a synthetic utterance with the Kaldi MLP
//! (paper Table I), comparing the fp32 network with the reuse engine.
//!
//! Run with: `cargo run --release --example speech_pipeline`
//! (set `REUSE_SCALE=full` for the exact Table I geometry)

use reuse_dnn::prelude::*;
use reuse_dnn::reuse;
use reuse_dnn::workloads::accuracy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = reuse_dnn::workloads::Scale::from_env();
    let workload = Workload::build(WorkloadKind::Kaldi, scale);
    println!(
        "Kaldi acoustic-scoring MLP at {scale} scale: {} parameters, {} senones",
        workload.network().param_count(),
        workload.network().output_shape().volume()
    );

    // A 2-second utterance: 200 overlapping 9-frame windows.
    let frames = workload.generate_frames(200, 1);
    let config = workload
        .reuse_config()
        .clone()
        .record_relative_difference(true);
    let mut engine = reuse::ReuseEngine::from_network(workload.network(), &config);

    let mut reuse_outs = Vec::new();
    let mut fp32_outs = Vec::new();
    for frame in &frames {
        reuse_outs.push(engine.execute(frame)?);
        fp32_outs.push(workload.network().forward_flat(frame)?);
    }

    // Decisions: the most likely senone per frame.
    let agreement = accuracy::classification_agreement(&fp32_outs, &reuse_outs);
    let rel_err = accuracy::mean_relative_error(&fp32_outs, &reuse_outs);
    println!("frames scored        : {}", frames.len());
    println!("senone agreement     : {:.2}%", agreement.ratio() * 100.0);
    println!("mean relative error  : {:.2}%", rel_err * 100.0);

    let m = engine.metrics();
    println!(
        "input similarity     : {:.1}%",
        m.overall_input_similarity() * 100.0
    );
    println!(
        "computation reuse    : {:.1}%",
        m.overall_computation_reuse() * 100.0
    );

    // The Fig. 4 view: how different are consecutive inputs of FC5?
    if let Some(rd) = engine.layer_relative_differences("fc5") {
        let mean = rd.iter().sum::<f32>() / rd.len().max(1) as f32;
        println!(
            "FC5 relative diff    : {:.1}% mean over the utterance",
            mean * 100.0
        );
    }
    Ok(())
}

//! End-to-end speech recognition with the EESEN bidirectional-LSTM RNN
//! (paper Table I): character likelihoods per frame, with reuse across
//! consecutive timesteps in both directions of every recurrent layer.
//!
//! Run with: `cargo run --release --example speech_to_text`

use reuse_dnn::prelude::*;
use reuse_dnn::reuse;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = reuse_dnn::workloads::Scale::from_env();
    let workload = Workload::build(WorkloadKind::Eesen, scale);
    println!(
        "EESEN RNN at {scale} scale: {} BiLSTM layers, {} output characters",
        workload
            .network()
            .layers()
            .iter()
            .filter(|(n, _)| n.starts_with("bilstm"))
            .count(),
        workload.network().output_shape().volume()
    );

    let mut engine = reuse::ReuseEngine::from_network(workload.network(), workload.reuse_config());

    // Two utterances: the first calibrates the quantizers (offline profiling
    // in the paper), the second is decoded with reuse.
    let utterances = workload.generate_sequences(2, 50, 11);
    engine.execute_sequence(&utterances[0])?;
    let outs = engine.execute_sequence(&utterances[1])?;

    // "Decode": the most likely character per frame, run-length collapsed
    // (a toy CTC-style collapse).
    let mut decoded = Vec::new();
    let mut last = usize::MAX;
    for out in &outs {
        let c = out.argmax();
        if c != last {
            decoded.push(c);
            last = c;
        }
    }
    println!(
        "decoded {} frames into {} character tokens",
        outs.len(),
        decoded.len()
    );

    let m = engine.metrics();
    for layer in ["bilstm1", "bilstm2", "bilstm3", "bilstm4", "bilstm5"] {
        if let Some(l) = m.layer(layer) {
            if l.reuse_executions > 0 {
                println!(
                    "{layer}: {:>5.1}% input similarity, {:>5.1}% computation reuse",
                    l.input_similarity() * 100.0,
                    l.computation_reuse() * 100.0
                );
            }
        }
    }
    println!(
        "overall: {:.1}% similarity, {:.1}% reuse (paper: >50% for recurrent layers)",
        m.overall_input_similarity() * 100.0,
        m.overall_computation_reuse() * 100.0
    );
    Ok(())
}

//! Self-driving steering over a synthetic drive with the AutoPilot CNN
//! (paper Table I): the network regresses a steering angle per dashcam
//! frame while the reuse engine skips computations for unchanged pixels.
//!
//! Run with: `cargo run --release --example autopilot_drive`

use reuse_dnn::prelude::*;
use reuse_dnn::reuse;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = reuse_dnn::workloads::Scale::from_env();
    let workload = Workload::build(WorkloadKind::AutoPilot, scale);
    println!(
        "AutoPilot steering CNN at {scale} scale ({} MB model)",
        workload.network().model_bytes() / (1 << 20)
    );

    // Thirty frames of driving (one second at 30 fps).
    let frames = workload.generate_frames(30, 7);
    let mut engine = reuse::ReuseEngine::from_network(workload.network(), workload.reuse_config());

    println!(
        "{:<7} {:>14} {:>14} {:>16}",
        "frame", "steer (reuse)", "steer (fp32)", "macs skipped"
    );
    let mut last_metrics = (0u64, 0u64);
    for (t, frame) in frames.iter().enumerate() {
        let reuse_out = engine.execute(frame)?;
        let fp32_out = workload.network().forward_flat(frame)?;
        let m = engine.metrics();
        let total: u64 = m.layers.iter().map(|l| l.macs_total).sum();
        let performed: u64 = m.layers.iter().map(|l| l.macs_performed).sum();
        let (dt, dp) = (total - last_metrics.0, performed - last_metrics.1);
        last_metrics = (total, performed);
        if t % 5 == 0 {
            let skipped = if dt > 0 {
                100.0 * (dt - dp) as f64 / dt as f64
            } else {
                0.0
            };
            println!(
                "{:<7} {:>14.4} {:>14.4} {:>15.1}%",
                t,
                reuse_out.as_slice()[0],
                fp32_out.as_slice()[0],
                skipped
            );
        }
    }
    let m = engine.metrics();
    println!();
    println!(
        "drive summary: {:.1}% input similarity, {:.1}% of multiply-accumulates avoided",
        m.overall_input_similarity() * 100.0,
        m.overall_computation_reuse() * 100.0
    );
    Ok(())
}

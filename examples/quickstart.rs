//! Quickstart: build a small MLP, stream temporally-correlated frames
//! through the reuse engine, and inspect how much computation was reused.
//!
//! Run with: `cargo run --release --example quickstart`

use reuse_dnn::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A small MLP: 32 inputs -> 64 -> 32 -> 8 outputs.
    let network = NetworkBuilder::new("quickstart-mlp", 32)
        .seed(7)
        .fully_connected(64, reuse_dnn::nn::Activation::Relu)
        .fully_connected(32, reuse_dnn::nn::Activation::Relu)
        .fully_connected(8, reuse_dnn::nn::Activation::Identity)
        .build()?;
    println!(
        "network: {} ({} parameters)",
        network.name(),
        network.param_count()
    );

    // 2. The reuse engine with 16-cluster linear quantization (paper Eq. 9).
    let config = ReuseConfig::uniform(16).record_trace(true);
    let mut engine = ReuseEngine::from_network(&network, &config);

    // 3. A smooth random walk stands in for consecutive audio/video frames.
    let mut rng = reuse_dnn::nn::init::Rng64::new(42);
    let mut frame = vec![0.0f32; 32];
    for step in 0..50 {
        for v in &mut frame {
            *v = (*v + rng.uniform(0.05)).clamp(-1.0, 1.0);
        }
        let out = engine.execute(&frame)?;
        if step % 10 == 0 {
            println!("step {step:>2}: prediction = class {}", out.argmax());
        }
    }

    // 4. How much work did the input similarity save?
    let m = engine.metrics();
    println!();
    println!(
        "input similarity   : {:.1}%",
        m.overall_input_similarity() * 100.0
    );
    println!(
        "computation reuse  : {:.1}%",
        m.overall_computation_reuse() * 100.0
    );

    // 5. The same run on the paper's accelerator (Table II): baseline vs reuse.
    let traces = engine.take_traces();
    let sim = Simulator::new(AcceleratorConfig::paper());
    let input = reuse_dnn::accel::SimInput {
        name: "quickstart",
        traces: &traces,
        model_bytes: network.model_bytes(),
        executions_per_sequence: 50,
        activations_spill: false,
    };
    let base = sim.simulate_baseline(&input);
    let reuse = sim.simulate_reuse(&input);
    println!(
        "accelerator        : {:.2}x speedup, {:.0}% energy savings",
        reuse.speedup_over(&base),
        (1.0 - reuse.normalized_energy_to(&base)) * 100.0
    );
    Ok(())
}

//! Accelerator design-space exploration: sweep tiles, precision and cluster
//! counts over one workload and print the resulting speedup/energy grid.
//!
//! Run with: `cargo run --release --example design_space`

use reuse_dnn::accel::{AcceleratorConfig, SimInput, Simulator};
use reuse_dnn::prelude::*;
use reuse_dnn::reuse::{self, ReuseConfig};

fn measure_traces(
    workload: &Workload,
    config: &ReuseConfig,
    executions: usize,
) -> (Vec<reuse_dnn::reuse::ExecutionTrace>, f64) {
    let mut engine =
        reuse::ReuseEngine::from_network(workload.network(), &config.clone().record_trace(true));
    for frame in workload.generate_frames(executions, 42) {
        engine.execute(&frame).expect("frames are valid");
    }
    let reuse_fraction = engine.metrics().overall_computation_reuse();
    (engine.take_traces(), reuse_fraction)
}

fn main() {
    let workload = Workload::build(WorkloadKind::AutoPilot, reuse_dnn::workloads::Scale::Tiny);
    println!(
        "design space for {} (tiny scale, 30 executions)\n",
        workload.kind()
    );

    // 1. Cluster counts change how much reuse the hardware can harvest.
    println!(
        "{:<10} {:>12} {:>10} {:>14}",
        "clusters", "comp. reuse", "speedup", "energy saved"
    );
    for clusters in [8usize, 16, 32, 64] {
        let config = workload
            .reuse_config()
            .clone()
            .with_default_clusters(clusters);
        let (traces, reuse_frac) = measure_traces(&workload, &config, 30);
        let sim = Simulator::new(AcceleratorConfig::paper());
        let input = SimInput {
            name: "ap",
            traces: &traces,
            model_bytes: workload.network().model_bytes(),
            executions_per_sequence: workload.executions_per_sequence(),
            activations_spill: workload.activations_spill(),
        };
        let base = sim.simulate_baseline(&input);
        let with_reuse = sim.simulate_reuse(&input);
        println!(
            "{:<10} {:>11.0}% {:>9.2}x {:>13.0}%",
            clusters,
            reuse_frac * 100.0,
            with_reuse.speedup_over(&base),
            (1.0 - with_reuse.normalized_energy_to(&base)) * 100.0,
        );
    }

    // 2. Hardware organization: tiles and precision at the paper's clusters.
    let (traces, _) = measure_traces(&workload, workload.reuse_config(), 30);
    println!(
        "\n{:<22} {:>12} {:>12} {:>10}",
        "organization", "baseline", "reuse", "speedup"
    );
    for (label, config) in [
        (
            "1 tile,  fp32",
            AcceleratorConfig {
                tiles: 1,
                ..AcceleratorConfig::paper()
            },
        ),
        ("4 tiles, fp32", AcceleratorConfig::paper()),
        (
            "8 tiles, fp32",
            AcceleratorConfig {
                tiles: 8,
                ..AcceleratorConfig::paper()
            },
        ),
        ("4 tiles, 8-bit", AcceleratorConfig::paper_fixed8()),
    ] {
        let sim = Simulator::new(config);
        let input = SimInput {
            name: "ap",
            traces: &traces,
            model_bytes: workload.network().model_bytes(),
            executions_per_sequence: workload.executions_per_sequence(),
            activations_spill: workload.activations_spill(),
        };
        let base = sim.simulate_baseline(&input);
        let with_reuse = sim.simulate_reuse(&input);
        println!(
            "{:<22} {:>9.2} ms {:>9.2} ms {:>9.2}x",
            label,
            base.seconds * 1e3,
            with_reuse.seconds * 1e3,
            with_reuse.speedup_over(&base),
        );
    }
    println!("\nthe reuse win is configuration-independent until the tile count outruns");
    println!("the layer's parallel units — exactly the paper's Section IV-E tradeoff");
}

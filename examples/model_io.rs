//! Model save/load round trip: serialize a trained-equivalent network to
//! the text format, reload it, and verify the reuse engine produces
//! identical decisions.
//!
//! Run with: `cargo run --release --example model_io`

use reuse_dnn::nn::serialize;
use reuse_dnn::prelude::*;
use reuse_dnn::reuse;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Workload::build(WorkloadKind::AutoPilot, reuse_dnn::workloads::Scale::Tiny);
    let net = workload.network();

    // Save.
    let text = serialize::to_string(net);
    let path = std::env::temp_dir().join("autopilot-tiny.reuse-dnn");
    std::fs::write(&path, &text)?;
    println!(
        "saved {} ({} KB) to {}",
        net.name(),
        text.len() / 1024,
        path.display()
    );

    // Load and verify bit-exact behaviour.
    let loaded = serialize::from_str(&std::fs::read_to_string(&path)?)?;
    let frames = workload.generate_frames(10, 3);
    let mut engine_a = reuse::ReuseEngine::from_network(net, workload.reuse_config());
    let mut engine_b = reuse::ReuseEngine::from_network(&loaded, workload.reuse_config());
    for (t, frame) in frames.iter().enumerate() {
        let a = engine_a.execute(frame)?;
        let b = engine_b.execute(frame)?;
        assert_eq!(a.as_slice(), b.as_slice(), "frame {t} diverged");
    }
    println!(
        "reloaded model reproduces all {} executions bit-for-bit",
        frames.len()
    );
    println!(
        "reuse after reload: {:.1}% of multiply-accumulates avoided",
        engine_b.metrics().overall_computation_reuse() * 100.0
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
